#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json trajectory records.

Compares a fresh bench run (--current-dir) against the committed
baselines (--baseline-dir, the repository root) and fails on a >20%
regression of any *throughput-rate* record (evals/s, requests/s, ...)
or any *percentile-latency* record (`*_p50` / `*_p99` in seconds,
gated lower-is-better with the same thresholds applied to the
inverted ratio), with a warn-only annotation in the 10-20% band.
Other time- and count-valued records are reported for context but
never gated: a single cold latency sample on a shared CI runner is
too noisy to block a PR on, while closed-loop rates and percentiles
average thousands of operations.

Exit codes: 0 clean (warnings allowed), 1 at least one record regressed
beyond the fail threshold, 2 usage/input error (missing or malformed
records — a bench that stopped emitting a gated record must not pass
silently).

Output is plain text plus GitHub workflow commands (::error::/
::warning::) so regressions surface as PR annotations.

The committed baselines are absolute rates from one machine, so they
are only comparable to runs on similar hardware — the gate's job is
to catch code-level regressions on the (reasonably homogeneous) CI
runner pool, not to be a portable performance oracle. When the runner
fleet shifts (or a perf change is intentional), recalibrate: apply
the `refresh-bench-baselines` label to the PR and commit the artifact
the bench-gate job uploads, or re-run locally:
    ./build/bench/<bench> --json BENCH_<bench>.json
"""

import argparse
import json
import os
import sys

FAIL_BELOW = 0.80  # current/baseline below this fails the gate.
WARN_BELOW = 0.90  # ... below this warns.


def is_rate(unit):
    """Throughput-style units: higher is better, stable enough to gate."""
    return isinstance(unit, str) and "/s" in unit


def is_latency(name, unit):
    """Percentile latencies: lower is better, averaged over enough
    requests to be gate-stable (unlike one-shot cold samples)."""
    return (isinstance(name, str) and unit == "seconds"
            and name.endswith(("_p50", "_p99")))


def is_gated(name, unit):
    return is_rate(unit) or is_latency(name, unit)


def load_records(path):
    """BENCH_*.json -> {record name: (value, unit)} for numeric records."""
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for entry in doc.get("records", []):
        name, value = entry.get("name"), entry.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        records[name] = (float(value), entry.get("unit", ""))
    return doc.get("bench", os.path.basename(path)), records


def gate_file(baseline_path, current_path):
    """Compare one bench's records.

    Returns (n_failed, warned_names) where warned_names lists the
    warn-band records as "bench: record" strings, so the caller's
    summary can name exactly what is drifting instead of a bare count.
    """
    bench, base = load_records(baseline_path)
    _, cur = load_records(current_path)
    failed = 0
    warned = []

    for name, (base_value, unit) in sorted(base.items()):
        if not is_gated(name, unit):
            continue
        if name not in cur:
            print(f"::error::{bench}: gated record '{name}' missing "
                  f"from the fresh run")
            failed += 1
            continue
        cur_value = cur[name][0]
        if base_value <= 0 or cur_value <= 0:
            print(f"{bench}: {name}: non-positive value, skipped")
            continue
        # Normalize so that ratio < 1 always means "got worse":
        # rates gate on current/baseline, latencies on the inverse.
        if is_rate(unit):
            ratio = cur_value / base_value
        else:
            ratio = base_value / cur_value
        line = (f"{bench}: {name}: {cur_value:.4g} {unit} vs baseline "
                f"{base_value:.4g} {unit} ({ratio:.1%} of baseline "
                f"{'rate' if is_rate(unit) else 'speed'})")
        if ratio < FAIL_BELOW:
            print(f"::error::{line} — regression beyond "
                  f"{1 - FAIL_BELOW:.0%}, failing the gate")
            failed += 1
        elif ratio < WARN_BELOW:
            print(f"::warning::{line} — within the "
                  f"{1 - FAIL_BELOW:.0%} gate but regressed more than "
                  f"{1 - WARN_BELOW:.0%}")
            warned.append(f"{bench}: {name}")
        else:
            print(f"ok: {line}")

    # Context-only records (one-shot times, counts): print, never gate.
    for name, (base_value, unit) in sorted(base.items()):
        if is_gated(name, unit) or name not in cur:
            continue
        print(f"info: {bench}: {name}: {cur[name][0]:.4g} {unit} "
              f"(baseline {base_value:.4g} {unit})")
    return failed, warned


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the committed "
                             "BENCH_*.json baselines")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding this run's BENCH_*.json")
    args = parser.parse_args()

    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"::error::no BENCH_*.json baselines in "
              f"{args.baseline_dir}")
        return 2

    total_failed = checked = 0
    all_warned = []
    for name in baselines:
        current = os.path.join(args.current_dir, name)
        if not os.path.exists(current):
            print(f"::error::baseline {name} has no fresh record in "
                  f"{args.current_dir} (bench not run?)")
            total_failed += 1
            continue
        try:
            failed, warned = gate_file(
                os.path.join(args.baseline_dir, name), current)
        except (json.JSONDecodeError, OSError) as e:
            print(f"::error::{name}: unreadable records: {e}")
            return 2
        total_failed += failed
        all_warned.extend(warned)
        checked += 1

    print(f"\nbench-gate: {checked} record files checked, "
          f"{total_failed} failed, {len(all_warned)} warned "
          f"(fail < {FAIL_BELOW:.0%} of baseline, "
          f"warn < {WARN_BELOW:.0%})")
    for record in all_warned:
        print(f"  warned: {record}")
    return 1 if total_failed else 0


if __name__ == "__main__":
    sys.exit(main())
