#include <gtest/gtest.h>

#include "config/json.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_EQ(JsonValue::parse("true").asBool(), true);
    EXPECT_EQ(JsonValue::parse("false").asBool(), false);
    EXPECT_DOUBLE_EQ(JsonValue::parse("42").asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-3.25").asDouble(), -3.25);
    EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("2.5E-2").asDouble(), 0.025);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesContainers)
{
    JsonValue v = JsonValue::parse(
        R"({"a": [1, 2, 3], "b": {"c": "x"}, "d": null})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("a").at(1).asDouble(), 2.0);
    EXPECT_EQ(v.at("b").at("c").asString(), "x");
    EXPECT_TRUE(v.at("d").isNull());
    EXPECT_TRUE(v.has("a"));
    EXPECT_FALSE(v.has("zzz"));
}

TEST(Json, EmptyContainers)
{
    EXPECT_EQ(JsonValue::parse("[]").size(), 0u);
    EXPECT_EQ(JsonValue::parse("{}").size(), 0u);
    EXPECT_EQ(JsonValue::parse(" [ ] ").size(), 0u);
}

TEST(Json, StringEscapes)
{
    JsonValue v = JsonValue::parse(R"("a\"b\\c\nd\teA")");
    EXPECT_EQ(v.asString(), "a\"b\\c\nd\teA");
}

TEST(Json, MalformedInputIsFatal)
{
    EXPECT_THROW(JsonValue::parse(""), ConfigError);
    EXPECT_THROW(JsonValue::parse("{"), ConfigError);
    EXPECT_THROW(JsonValue::parse("[1,"), ConfigError);
    EXPECT_THROW(JsonValue::parse("{'single': 1}"), ConfigError);
    EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), ConfigError);
    EXPECT_THROW(JsonValue::parse("tru"), ConfigError);
    EXPECT_THROW(JsonValue::parse("1 2"), ConfigError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), ConfigError);
    EXPECT_THROW(JsonValue::parse("[1] trailing"), ConfigError);
}

TEST(Json, ErrorsCarryLineAndColumn)
{
    try {
        JsonValue::parse("{\n  \"a\": oops\n}");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    }
}

TEST(Json, TypeMismatchesAreFatal)
{
    JsonValue v = JsonValue::parse(R"({"a": 1})");
    EXPECT_THROW(v.asArray(), ConfigError);
    EXPECT_THROW(v.at("a").asString(), ConfigError);
    EXPECT_THROW(v.at("missing"), ConfigError);
    EXPECT_THROW(v.at("a").asBool(), ConfigError);
    JsonValue arr = JsonValue::parse("[1]");
    EXPECT_THROW(arr.at(5), ConfigError);
    EXPECT_THROW(JsonValue(1.0).size(), ConfigError);
}

TEST(Json, FallbackAccessors)
{
    JsonValue v = JsonValue::parse(R"({"x": 5, "s": "abc", "f": true})");
    EXPECT_DOUBLE_EQ(v.numberOr("x", 0.0), 5.0);
    EXPECT_DOUBLE_EQ(v.numberOr("y", 7.0), 7.0);
    EXPECT_EQ(v.stringOr("s", "zzz"), "abc");
    EXPECT_EQ(v.stringOr("t", "zzz"), "zzz");
    EXPECT_EQ(v.boolOr("f", false), true);
    EXPECT_EQ(v.boolOr("g", false), false);
}

TEST(Json, DumpRoundTrips)
{
    const std::string doc =
        R"({"arr":[1,2.5,"three"],"nested":{"t":true,"n":null}})";
    JsonValue v = JsonValue::parse(doc);
    // Compact dump re-parses to an equivalent tree.
    JsonValue again = JsonValue::parse(v.dump());
    EXPECT_DOUBLE_EQ(again.at("arr").at(1).asDouble(), 2.5);
    EXPECT_EQ(again.at("arr").at(2).asString(), "three");
    EXPECT_TRUE(again.at("nested").at("n").isNull());
    EXPECT_EQ(again.at("nested").at("t").asBool(), true);
}

TEST(Json, PrettyDumpIndents)
{
    JsonValue v = JsonValue::parse(R"({"a":[1],"b":2})");
    std::string pretty = v.dump(2);
    EXPECT_NE(pretty.find("\n  \"a\""), std::string::npos);
    EXPECT_NE(pretty.find(": "), std::string::npos);
}

TEST(Json, IntegersDumpWithoutDecimalPoint)
{
    EXPECT_EQ(JsonValue(65536L).dump(), "65536");
    EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
}

TEST(Json, BuilderInterface)
{
    JsonValue obj;
    obj.set("name", "ZionEX").set("nodes", 16L);
    JsonValue arr;
    arr.append(1.0).append(2.0);
    obj.set("dims", std::move(arr));
    JsonValue parsed = JsonValue::parse(obj.dump());
    EXPECT_EQ(parsed.at("name").asString(), "ZionEX");
    EXPECT_EQ(parsed.at("nodes").asLong(), 16);
    EXPECT_EQ(parsed.at("dims").size(), 2u);
}

TEST(Json, ParseFileMissingIsFatal)
{
    EXPECT_THROW(JsonValue::parseFile("/nonexistent/path.json"),
                 ConfigError);
}

TEST(Json, NestingBeyondTheCapIsFatalNotAStackOverflow)
{
    // The serving layer feeds network input to this parser: a deeply
    // nested body must raise ConfigError, not recurse until SIGSEGV.
    std::string deep(100000, '[');
    EXPECT_THROW(JsonValue::parse(deep), ConfigError);
    deep = std::string(100000, '[') + std::string(100000, ']');
    EXPECT_THROW(JsonValue::parse(deep), ConfigError);

    // Exactly 200 levels (the documented cap) still parses; 201
    // does not.
    std::string ok = std::string(200, '[') + "1" +
        std::string(200, ']');
    EXPECT_EQ(JsonValue::parse(ok).size(), 1u);
    std::string over = std::string(201, '[') + "1" +
        std::string(201, ']');
    EXPECT_THROW(JsonValue::parse(over), ConfigError);
}

} // namespace madmax
