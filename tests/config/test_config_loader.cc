#include <gtest/gtest.h>

#include "config/config_loader.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(ConfigLoader, ParseStrategyNotation)
{
    EXPECT_EQ(parseStrategy("(TP, DDP)"),
              (HierStrategy{Strategy::TP, Strategy::DDP}));
    EXPECT_EQ(parseStrategy("(FSDP)"), HierStrategy{Strategy::FSDP});
    EXPECT_EQ(parseStrategy("mp"), HierStrategy{Strategy::MP});
    EXPECT_EQ(parseStrategy("( ddp , tp )"),
              (HierStrategy{Strategy::DDP, Strategy::TP}));
    EXPECT_THROW(parseStrategy("(XYZ)"), ConfigError);
    EXPECT_THROW(parseStrategy(""), ConfigError);
}

TEST(ConfigLoader, ZooModelByName)
{
    JsonValue j = JsonValue::parse(R"json({"type":"zoo","name":"dlrm-a"})json");
    ModelDesc m = loadModel(j);
    EXPECT_EQ(m.name, "DLRM-A");
    EXPECT_EQ(m.globalBatchSize, 65536);

    JsonValue g = JsonValue::parse(R"json({"type":"zoo","name":"GPT-3"})json");
    EXPECT_EQ(loadModel(g).name, "GPT-3");

    JsonValue bad = JsonValue::parse(R"json({"type":"zoo","name":"nope"})json");
    EXPECT_THROW(loadModel(bad), ConfigError);
}

TEST(ConfigLoader, CustomDlrmFromJson)
{
    JsonValue j = JsonValue::parse(R"json({
        "type": "dlrm",
        "name": "my-dlrm",
        "global_batch": 8192,
        "embedding": {"tables": 100, "rows_per_table": 1000000,
                      "dim": 64, "pooling": 10},
        "bottom_mlp": [256, 512, 64],
        "top_mlp": [512, 1024, 1]
    })json");
    ModelDesc m = loadModel(j);
    EXPECT_EQ(m.name, "my-dlrm");
    EXPECT_TRUE(m.isRecommendation);
    EXPECT_EQ(m.graph.numLayers(), 4); // emb, bottom, interact, top.
    EXPECT_NEAR(m.graph.totals().paramCount, 100.0 * 1000000 * 64,
                1e6); // Embedding dominates.
    EXPECT_EQ(m.graph.layer(2).kind(), LayerKind::Interaction);
}

TEST(ConfigLoader, CustomDlrmWithTransformerAndMoe)
{
    JsonValue j = JsonValue::parse(R"json({
        "type": "dlrm",
        "global_batch": 8192,
        "embedding": {"tables": 10, "rows_per_table": 1000,
                      "dim": 64, "pooling": 2},
        "bottom_mlp": [64, 64],
        "transformer": {"layers": 2, "hidden": 128, "heads": 4,
                        "seq": 16, "ffn": 512},
        "moe": {"experts": 8, "active": 2, "ffn": 256},
        "top_mlp": [128, 1]
    })json");
    ModelDesc m = loadModel(j);
    EXPECT_TRUE(m.graph.hasClass(LayerClass::Transformer));
    EXPECT_TRUE(m.graph.hasClass(LayerClass::MoE));
    EXPECT_TRUE(m.graph.hasClass(LayerClass::SparseEmbedding));
}

TEST(ConfigLoader, CustomLlmFromJson)
{
    JsonValue j = JsonValue::parse(R"json({
        "type": "llm",
        "name": "tiny-llm",
        "global_batch": 64,
        "context": 1024,
        "vocab": 32000,
        "hidden": 1024,
        "layers": 4,
        "heads": 16,
        "ffn": 4096,
        "ffn_matrices": 3,
        "kv_heads": 4,
        "embedding_tie_factor": 2
    })json");
    ModelDesc m = loadModel(j);
    EXPECT_EQ(m.contextLength, 1024);
    EXPECT_FALSE(m.isRecommendation);
    // 1 embedding + 4 x (attn + ffn).
    EXPECT_EQ(m.graph.numLayers(), 9);
    EXPECT_EQ(m.computeDtype, DataType::BF16);
}

TEST(ConfigLoader, LlmMoeVariant)
{
    JsonValue j = JsonValue::parse(R"json({
        "type": "llm", "global_batch": 64, "context": 128,
        "vocab": 1000, "hidden": 256, "layers": 2, "heads": 4,
        "ffn": 1024, "moe": {"experts": 4, "active": 1}
    })json");
    ModelDesc m = loadModel(j);
    EXPECT_TRUE(m.graph.hasClass(LayerClass::MoE));
    EXPECT_FALSE(m.graph.hasClass(LayerClass::Transformer) &&
                 m.graph.layersOfClass(LayerClass::Transformer).empty());
}

TEST(ConfigLoader, UnknownModelTypeIsFatal)
{
    JsonValue j = JsonValue::parse(R"json({"type":"cnn"})json");
    EXPECT_THROW(loadModel(j), ConfigError);
}

TEST(ConfigLoader, ClusterFromJson)
{
    JsonValue j = JsonValue::parse(R"json({
        "name": "test-cluster",
        "device": {"name": "A100", "peak_tflops_16": 312,
                   "peak_tflops_tf32": 156, "hbm_gib": 40,
                   "hbm_gbps": 1600, "intra_node_gbps": 300,
                   "inter_node_gbps": 25},
        "devices_per_node": 8,
        "num_nodes": 16,
        "inter_fabric": "roce",
        "compute_utilization": 0.7
    })json");
    ClusterSpec c = loadCluster(j);
    EXPECT_EQ(c.numDevices(), 128);
    EXPECT_EQ(c.interFabric, FabricKind::RoCE);
    EXPECT_DOUBLE_EQ(c.device.peakFlopsTensor16, 312e12);
    EXPECT_DOUBLE_EQ(c.device.hbmBandwidth, 1600e9);
    EXPECT_DOUBLE_EQ(c.util.compute, 0.7);
    // Unspecified utilizations take defaults.
    EXPECT_DOUBLE_EQ(c.util.hbm, 0.80);
}

TEST(ConfigLoader, ClusterRoundTripsThroughJson)
{
    ClusterSpec original = hw_zoo::dlrmTrainingSystem();
    JsonValue j = toJson(original);
    ClusterSpec back = loadCluster(j);
    EXPECT_EQ(back.name, original.name);
    EXPECT_EQ(back.numDevices(), original.numDevices());
    EXPECT_NEAR(back.device.peakFlopsTensor16,
                original.device.peakFlopsTensor16, 1e6);
    EXPECT_NEAR(back.device.hbmCapacity, original.device.hbmCapacity,
                1e6);
    EXPECT_EQ(back.interFabric, original.interFabric);
    EXPECT_DOUBLE_EQ(back.util.interLink, original.util.interLink);
}

TEST(ConfigLoader, ClusterTopologyExplicitLevels)
{
    JsonValue j = JsonValue::parse(R"json({
        "name": "topo-cluster",
        "device": {"name": "A100", "peak_tflops_16": 312,
                   "peak_tflops_tf32": 156, "hbm_gib": 40,
                   "hbm_gbps": 1600, "intra_node_gbps": 300,
                   "inter_node_gbps": 25},
        "devices_per_node": 8,
        "num_nodes": 16,
        "inter_fabric": "roce",
        "topology": {
            "name": "my-topo",
            "levels": [
                {"name": "node", "fan": 8},
                {"fan": 4, "bandwidth_gbps": 12.5, "latency_us": 5,
                 "rails": 2},
                {"name": "pod", "fan": 4, "sharers": 2.0}
            ]
        }
    })json");
    ClusterSpec c = loadCluster(j);
    ASSERT_NE(c.topology, nullptr);
    const TopologySpec &t = *c.topology;
    EXPECT_EQ(t.name, "my-topo");
    ASSERT_EQ(t.levels.size(), 3u);
    // Omitted bandwidth inherits the flat effective rate of the
    // matching scope; omitted names get positional defaults.
    EXPECT_EQ(t.levels[0].name, "node");
    EXPECT_NEAR(t.levels[0].linkBandwidth, c.effIntraBandwidth(), 1.0);
    EXPECT_LT(t.levels[0].linkLatency, 0.0); // Inherits alpha default.
    EXPECT_EQ(t.levels[1].name, "tier1");
    EXPECT_DOUBLE_EQ(t.levels[1].linkBandwidth, 12.5e9);
    EXPECT_DOUBLE_EQ(t.levels[1].linkLatency, 5e-6);
    EXPECT_EQ(t.levels[1].rails, 2);
    EXPECT_NEAR(t.levels[2].linkBandwidth, c.effInterBandwidth(), 1.0);
    EXPECT_DOUBLE_EQ(t.levels[2].sharers, 2.0);
    EXPECT_EQ(t.totalDevices(), c.numDevices());
}

TEST(ConfigLoader, ClusterTopologyPresets)
{
    JsonValue j = JsonValue::parse(R"json({
        "name": "preset-cluster",
        "device": {"name": "A100", "peak_tflops_16": 312,
                   "peak_tflops_tf32": 156, "hbm_gib": 40,
                   "hbm_gbps": 1600, "intra_node_gbps": 300,
                   "inter_node_gbps": 25},
        "devices_per_node": 8,
        "num_nodes": 16,
        "topology": {"preset": "dc-rail", "rail_nodes": 4}
    })json");
    ClusterSpec c = loadCluster(j);
    ASSERT_NE(c.topology, nullptr);
    EXPECT_EQ(c.topology->name, "dc-rail");
    ASSERT_EQ(c.topology->levels.size(), 3u);
    EXPECT_EQ(c.topology->levels[0].fan, 8);
    EXPECT_EQ(c.topology->levels[1].fan, 4);
    EXPECT_EQ(c.topology->levels[2].fan, 4);

    JsonValue bad = JsonValue::parse(R"json({
        "name": "preset-cluster",
        "device": {"name": "A100", "peak_tflops_16": 312,
                   "peak_tflops_tf32": 156, "hbm_gib": 40,
                   "hbm_gbps": 1600, "intra_node_gbps": 300,
                   "inter_node_gbps": 25},
        "devices_per_node": 8,
        "num_nodes": 16,
        "topology": {"preset": "torus"}
    })json");
    EXPECT_THROW(loadCluster(bad), ConfigError);
}

TEST(ConfigLoader, ClusterTopologyRoundTripsThroughJson)
{
    ClusterSpec original = hw_zoo::withTopology(
        hw_zoo::dlrmTrainingSystem(),
        hw_zoo::dcPodFleetTopology(hw_zoo::dlrmTrainingSystem()));
    ClusterSpec back = loadCluster(toJson(original));
    ASSERT_NE(back.topology, nullptr);
    const TopologySpec &a = *original.topology;
    const TopologySpec &b = *back.topology;
    EXPECT_EQ(b.name, a.name);
    ASSERT_EQ(b.levels.size(), a.levels.size());
    for (size_t i = 0; i < a.levels.size(); ++i) {
        EXPECT_EQ(b.levels[i].name, a.levels[i].name);
        EXPECT_EQ(b.levels[i].fan, a.levels[i].fan);
        EXPECT_EQ(b.levels[i].rails, a.levels[i].rails);
        EXPECT_DOUBLE_EQ(b.levels[i].sharers, a.levels[i].sharers);
        EXPECT_NEAR(b.levels[i].linkBandwidth,
                    a.levels[i].linkBandwidth,
                    a.levels[i].linkBandwidth * 1e-12 + 1.0);
    }
}

TEST(ConfigLoader, ClusterTopologyShapeMismatchIsFatal)
{
    // Scale-out fan product 3 x 4 != 16 nodes: loadCluster's final
    // validate() must reject the stack.
    JsonValue j = JsonValue::parse(R"json({
        "name": "bad-topo",
        "device": {"name": "A100", "peak_tflops_16": 312,
                   "peak_tflops_tf32": 156, "hbm_gib": 40,
                   "hbm_gbps": 1600, "intra_node_gbps": 300,
                   "inter_node_gbps": 25},
        "devices_per_node": 8,
        "num_nodes": 16,
        "topology": {"levels": [{"fan": 8}, {"fan": 3}, {"fan": 4}]}
    })json");
    EXPECT_THROW(loadCluster(j), ConfigError);
}

TEST(ConfigLoader, ShippedTopologyConfigLoads)
{
    ClusterSpec c = loadClusterFile(std::string(MADMAX_CONFIG_DIR) +
                                    "/system_zionex_topo.json");
    EXPECT_EQ(c.numDevices(), 128);
    ASSERT_NE(c.topology, nullptr);
    EXPECT_EQ(c.topology->name, "zionex-rail");
    ASSERT_EQ(c.topology->levels.size(), 3u);
    EXPECT_EQ(c.topology->levels[1].rails, 2);
    EXPECT_DOUBLE_EQ(c.topology->levels[2].sharers, 2.0);
}

TEST(ConfigLoader, TaskFromJson)
{
    JsonValue j = JsonValue::parse(R"json({
        "task": "pre-training",
        "strategies": {
            "embedding": "(MP)",
            "base_dense": "(TP, DDP)",
            "transformer": "(FSDP)"
        },
        "fsdp_prefetch": true
    })json");
    TaskConfig cfg = loadTask(j);
    EXPECT_EQ(cfg.task.kind, TaskKind::PreTraining);
    EXPECT_EQ(cfg.plan.strategyFor(LayerClass::BaseDense),
              (HierStrategy{Strategy::TP, Strategy::DDP}));
    EXPECT_EQ(cfg.plan.strategyFor(LayerClass::SparseEmbedding),
              HierStrategy{Strategy::MP});
    EXPECT_TRUE(cfg.plan.fsdpPrefetch);
}

TEST(ConfigLoader, TaskDefaultsToFsdpBaseline)
{
    JsonValue j = JsonValue::parse(R"json({"task": "inference"})json");
    TaskConfig cfg = loadTask(j);
    EXPECT_EQ(cfg.task.kind, TaskKind::Inference);
    EXPECT_EQ(cfg.plan.strategyFor(LayerClass::Transformer),
              HierStrategy{Strategy::FSDP});
}

TEST(ConfigLoader, FineTuneScopes)
{
    JsonValue dense = JsonValue::parse(
        R"json({"task": "fine-tuning", "finetune_scope": "dense"})json");
    EXPECT_EQ(loadTask(dense).task.ftScope, FineTuneScope::DenseOnly);
    JsonValue emb = JsonValue::parse(
        R"json({"task": "fine-tuning", "finetune_scope": "embedding"})json");
    EXPECT_EQ(loadTask(emb).task.ftScope, FineTuneScope::EmbeddingOnly);
    JsonValue bad = JsonValue::parse(R"json({"task": "dreaming"})json");
    EXPECT_THROW(loadTask(bad), ConfigError);
}

TEST(ConfigLoader, TaskRoundTrip)
{
    TaskConfig cfg;
    cfg.task = TaskSpec::fineTuning(FineTuneScope::EmbeddingOnly);
    cfg.plan.set(LayerClass::BaseDense,
                 HierStrategy{Strategy::DDP, Strategy::FSDP});
    cfg.plan.fsdpPrefetch = true;
    TaskConfig back = loadTask(toJson(cfg));
    EXPECT_EQ(back.task.kind, TaskKind::FineTuning);
    EXPECT_EQ(back.task.ftScope, FineTuneScope::EmbeddingOnly);
    EXPECT_EQ(back.plan.strategyFor(LayerClass::BaseDense),
              (HierStrategy{Strategy::DDP, Strategy::FSDP}));
    EXPECT_TRUE(back.plan.fsdpPrefetch);
}

TEST(ConfigLoader, HeterogeneousClusterFromJson)
{
    JsonValue j = JsonValue::parse(R"json({
        "name": "mixed",
        "inter_fabric": "infiniband",
        "device_groups": [
            {"name": "fast",
             "device": {"name": "H100", "peak_tflops_16": 756,
                        "peak_tflops_tf32": 378, "peak_tflops_fp32": 67,
                        "hbm_gib": 80, "hbm_gbps": 2000,
                        "intra_node_gbps": 450, "inter_node_gbps": 400},
             "devices_per_node": 8, "num_nodes": 2},
            {"name": "big",
             "device": {"name": "A100-80GB", "peak_tflops_16": 312,
                        "peak_tflops_tf32": 156, "peak_tflops_fp32": 19.5,
                        "hbm_gib": 80, "hbm_gbps": 2000,
                        "intra_node_gbps": 300, "inter_node_gbps": 200},
             "devices_per_node": 8, "num_nodes": 4}
        ]
    })json");
    ClusterSpec c = loadCluster(j);
    EXPECT_TRUE(c.isHeterogeneous());
    ASSERT_EQ(c.groups.size(), 2u);
    EXPECT_EQ(c.groups[0].name, "fast");
    EXPECT_EQ(c.groups[1].device.name, "A100-80GB");
    EXPECT_EQ(c.totalDevices(), 16 + 32);
    EXPECT_EQ(c.interFabric, FabricKind::InfiniBand);
    c.validate();
}

TEST(ConfigLoader, HeterogeneousClusterRoundTripsThroughJson)
{
    ClusterSpec original = hw_zoo::mixedInferenceFleet();
    JsonValue j = toJson(original);
    // Heterogeneous clusters serialize their groups, not flat fields.
    EXPECT_TRUE(j.has("device_groups"));
    EXPECT_FALSE(j.has("device"));
    ClusterSpec back = loadCluster(j);
    ASSERT_EQ(back.groups.size(), original.groups.size());
    for (size_t i = 0; i < back.groups.size(); ++i) {
        EXPECT_EQ(back.groups[i].name, original.groups[i].name);
        EXPECT_EQ(back.groups[i].numNodes, original.groups[i].numNodes);
        EXPECT_NEAR(back.groups[i].device.peakFlopsTensor16,
                    original.groups[i].device.peakFlopsTensor16, 1e6);
    }
    EXPECT_EQ(back.totalDevices(), original.totalDevices());
}

TEST(ConfigLoader, ServingPhaseTasksParseAndRoundTrip)
{
    // Kind shorthand.
    TaskConfig prefill = loadTask(
        JsonValue::parse(R"json({"task": "prefill"})json"));
    EXPECT_EQ(prefill.task.phase, InferencePhase::Prefill);
    EXPECT_TRUE(prefill.task.usesKvCache());

    // Explicit phase key with the KV knobs.
    TaskConfig decode = loadTask(JsonValue::parse(R"json({
        "task": "inference", "phase": "decode",
        "decode_kv_tokens": 4096, "kv_capacity_tokens": 4352,
        "kv_bytes_per_element": 1
    })json"));
    EXPECT_EQ(decode.task.phase, InferencePhase::Decode);
    EXPECT_EQ(decode.task.decodeKvLength, 4096);
    EXPECT_EQ(decode.task.kvCapacityTokens, 4352);
    EXPECT_DOUBLE_EQ(decode.task.kvBytesPerElement, 1.0);

    TaskConfig back = loadTask(toJson(decode));
    EXPECT_EQ(back.task.toString(), decode.task.toString());

    // The classic batch task keeps the legacy JSON shape.
    TaskConfig batch = loadTask(
        JsonValue::parse(R"json({"task": "inference"})json"));
    EXPECT_FALSE(toJson(batch).has("phase"));

    EXPECT_THROW(loadTask(JsonValue::parse(
                     R"json({"task": "inference", "phase": "warmup"})json")),
                 ConfigError);
}

TEST(ConfigLoader, ServingTaskKvKnobErrorsAreActionable)
{
    try {
        loadTask(JsonValue::parse(R"json({
            "task": "decode", "kv_capacity_tokens": -1
        })json"));
        FAIL() << "negative kv_capacity_tokens must be fatal";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("kv_capacity_tokens"),
                  std::string::npos);
    }
    try {
        loadTask(JsonValue::parse(R"json({
            "task": "prefill", "kv_bytes_per_element": 0
        })json"));
        FAIL() << "zero kv_bytes_per_element must be fatal";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("fp8"), std::string::npos);
    }
}

TEST(ConfigLoader, LlmContextMustBePositive)
{
    JsonValue j = JsonValue::parse(R"json({
        "type": "llm", "name": "bad", "global_batch": 8,
        "context": 0, "vocab": 1000, "hidden": 64, "layers": 1,
        "heads": 4, "ffn": 256
    })json");
    try {
        loadModel(j);
        FAIL() << "context 0 must be fatal";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("context"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("Llama-2"),
                  std::string::npos);
    }
}

TEST(ConfigLoader, Llama2ZooNamesTakeAContext)
{
    JsonValue j = JsonValue::parse(
        R"json({"type": "zoo", "name": "llama2-13b", "context": 2048})json");
    ModelDesc m = loadModel(j);
    EXPECT_EQ(m.name, "LLaMA2-13B-ctx2048");
    EXPECT_EQ(m.contextLength, 2048);
    JsonValue d = JsonValue::parse(
        R"json({"type": "zoo", "name": "llama2-7b"})json");
    EXPECT_EQ(loadModel(d).contextLength, 4096);
}

TEST(ConfigLoader, WorkloadParsesAndValidates)
{
    InferenceWorkload w = loadWorkload(JsonValue::parse(R"json({
        "prompt_tokens": 512, "generate_tokens": 128,
        "kv_bytes_per_element": 1,
        "prefill_group": "fast", "decode_group": "big"
    })json"));
    EXPECT_EQ(w.promptTokens, 512);
    EXPECT_EQ(w.generateTokens, 128);
    EXPECT_DOUBLE_EQ(w.kvBytesPerElement, 1.0);
    EXPECT_EQ(w.prefillGroup, "fast");
    EXPECT_EQ(w.decodeGroup, "big");

    // Defaults: prompt from the model, 256 generated, fp16 cache.
    InferenceWorkload d = loadWorkload(JsonValue::parse("{}"));
    EXPECT_EQ(d.promptTokens, 0);
    EXPECT_EQ(d.generateTokens, 256);

    InferenceWorkload back = loadWorkload(toJson(w));
    EXPECT_EQ(back.promptTokens, w.promptTokens);
    EXPECT_EQ(back.decodeGroup, w.decodeGroup);

    EXPECT_THROW(loadWorkload(JsonValue::parse(
                     R"json({"prompt_tokens": -5})json")),
                 ConfigError);
    EXPECT_THROW(loadWorkload(JsonValue::parse(
                     R"json({"generate_tokens": 0})json")),
                 ConfigError);
    try {
        loadWorkload(JsonValue::parse(
            R"json({"kv_bytes_per_element": -2})json"));
        FAIL() << "negative KV bytes must be fatal";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("kv_bytes_per_element"),
                  std::string::npos);
    }
}

TEST(ConfigLoader, ShippedServingConfigsLoad)
{
    ModelDesc m = loadModelFile(std::string(MADMAX_CONFIG_DIR) +
                                "/model_llama2_13b.json");
    EXPECT_EQ(m.name, "LLaMA2-13B-ctx2048");
    ClusterSpec c = loadClusterFile(std::string(MADMAX_CONFIG_DIR) +
                                    "/system_mixed_inference.json");
    EXPECT_TRUE(c.isHeterogeneous());
    EXPECT_EQ(c.totalDevices(),
              hw_zoo::mixedInferenceFleet().totalDevices());
    InferenceWorkload w = loadWorkloadFile(
        std::string(MADMAX_CONFIG_DIR) + "/workload_serving.json");
    EXPECT_EQ(w.generateTokens, 256);
}

TEST(ConfigLoader, ShippedConfigsLoad)
{
    // The configs/ directory ships working examples; paths are
    // relative to the repository root (ctest runs from build/).
    ModelDesc m = loadModelFile(std::string(MADMAX_CONFIG_DIR) +
                                "/model_dlrm_a.json");
    EXPECT_EQ(m.name, "DLRM-A");
    ClusterSpec c = loadClusterFile(std::string(MADMAX_CONFIG_DIR) +
                                    "/system_zionex.json");
    EXPECT_EQ(c.numDevices(), 128);
    TaskConfig t = loadTaskFile(std::string(MADMAX_CONFIG_DIR) +
                                "/task_pretrain_optimal.json");
    EXPECT_EQ(t.task.kind, TaskKind::PreTraining);
}

} // namespace madmax
