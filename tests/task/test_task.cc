#include <gtest/gtest.h>

#include "task/task.hh"

namespace madmax
{

TEST(TaskSpec, PreTrainingTrainsEverything)
{
    TaskSpec t = TaskSpec::preTraining();
    EXPECT_TRUE(t.needsBackward());
    EXPECT_TRUE(t.retainsActivations());
    for (LayerClass cls :
         {LayerClass::SparseEmbedding, LayerClass::DenseEmbedding,
          LayerClass::BaseDense, LayerClass::Transformer, LayerClass::MoE})
        EXPECT_TRUE(t.isTrainable(cls));
    EXPECT_DOUBLE_EQ(t.backwardFlopsMultiplier(LayerClass::BaseDense),
                     2.0);
}

TEST(TaskSpec, InferenceIsForwardOnly)
{
    TaskSpec t = TaskSpec::inference();
    EXPECT_FALSE(t.needsBackward());
    EXPECT_FALSE(t.retainsActivations());
    EXPECT_FALSE(t.isTrainable(LayerClass::BaseDense));
    EXPECT_DOUBLE_EQ(t.backwardFlopsMultiplier(LayerClass::BaseDense),
                     0.0);
    EXPECT_DOUBLE_EQ(t.gradBytesPerParam(LayerClass::BaseDense), 0.0);
    EXPECT_DOUBLE_EQ(t.optimizerBytesPerParam(LayerClass::Transformer),
                     0.0);
}

TEST(TaskSpec, FineTuningDenseOnlyFreezesEmbeddings)
{
    TaskSpec t = TaskSpec::fineTuning(FineTuneScope::DenseOnly);
    EXPECT_TRUE(t.needsBackward());
    EXPECT_TRUE(t.isTrainable(LayerClass::BaseDense));
    EXPECT_TRUE(t.isTrainable(LayerClass::Transformer));
    EXPECT_TRUE(t.isTrainable(LayerClass::MoE));
    EXPECT_FALSE(t.isTrainable(LayerClass::SparseEmbedding));
    EXPECT_FALSE(t.isTrainable(LayerClass::DenseEmbedding));
}

TEST(TaskSpec, FineTuningEmbeddingOnlyFreezesDense)
{
    TaskSpec t = TaskSpec::fineTuning(FineTuneScope::EmbeddingOnly);
    EXPECT_TRUE(t.isTrainable(LayerClass::SparseEmbedding));
    EXPECT_TRUE(t.isTrainable(LayerClass::DenseEmbedding));
    EXPECT_FALSE(t.isTrainable(LayerClass::BaseDense));
    EXPECT_FALSE(t.isTrainable(LayerClass::Transformer));
    // Frozen dense layers still propagate input gradients (~1x),
    // skipping the costly weight-gradient work (Insight 5).
    EXPECT_DOUBLE_EQ(t.backwardFlopsMultiplier(LayerClass::BaseDense),
                     1.0);
    EXPECT_DOUBLE_EQ(
        t.backwardFlopsMultiplier(LayerClass::SparseEmbedding), 2.0);
}

TEST(TaskSpec, GradientAndOptimizerResidency)
{
    TaskSpec t = TaskSpec::preTraining();
    // Dense layers: fp32 grads + Adam m/v.
    EXPECT_DOUBLE_EQ(t.gradBytesPerParam(LayerClass::BaseDense), 4.0);
    EXPECT_DOUBLE_EQ(t.optimizerBytesPerParam(LayerClass::BaseDense),
                     8.0);
    // Sparse tables: row-sparse grads, row-wise adagrad.
    EXPECT_DOUBLE_EQ(t.gradBytesPerParam(LayerClass::SparseEmbedding),
                     0.0);
    EXPECT_NEAR(t.optimizerBytesPerParam(LayerClass::SparseEmbedding),
                0.1, 1e-12);

    TaskSpec ft = TaskSpec::fineTuning(FineTuneScope::DenseOnly);
    EXPECT_DOUBLE_EQ(ft.gradBytesPerParam(LayerClass::SparseEmbedding),
                     0.0);
    EXPECT_DOUBLE_EQ(
        ft.optimizerBytesPerParam(LayerClass::SparseEmbedding), 0.0);
}

TEST(TaskSpec, Names)
{
    EXPECT_EQ(TaskSpec::preTraining().toString(), "pre-training");
    EXPECT_EQ(TaskSpec::inference().toString(), "inference");
    EXPECT_EQ(TaskSpec::fineTuning(FineTuneScope::EmbeddingOnly)
                  .toString(),
              "fine-tuning (embedding-only)");
    EXPECT_EQ(toString(TaskKind::PreTraining), "pre-training");
    EXPECT_EQ(toString(FineTuneScope::DenseOnly), "dense-only");
}

} // namespace madmax
