#include <gtest/gtest.h>

#include "task/task.hh"

namespace madmax
{

TEST(TaskSpec, PreTrainingTrainsEverything)
{
    TaskSpec t = TaskSpec::preTraining();
    EXPECT_TRUE(t.needsBackward());
    EXPECT_TRUE(t.retainsActivations());
    for (LayerClass cls :
         {LayerClass::SparseEmbedding, LayerClass::DenseEmbedding,
          LayerClass::BaseDense, LayerClass::Transformer, LayerClass::MoE})
        EXPECT_TRUE(t.isTrainable(cls));
    EXPECT_DOUBLE_EQ(t.backwardFlopsMultiplier(LayerClass::BaseDense),
                     2.0);
}

TEST(TaskSpec, InferenceIsForwardOnly)
{
    TaskSpec t = TaskSpec::inference();
    EXPECT_FALSE(t.needsBackward());
    EXPECT_FALSE(t.retainsActivations());
    EXPECT_FALSE(t.isTrainable(LayerClass::BaseDense));
    EXPECT_DOUBLE_EQ(t.backwardFlopsMultiplier(LayerClass::BaseDense),
                     0.0);
    EXPECT_DOUBLE_EQ(t.gradBytesPerParam(LayerClass::BaseDense), 0.0);
    EXPECT_DOUBLE_EQ(t.optimizerBytesPerParam(LayerClass::Transformer),
                     0.0);
}

TEST(TaskSpec, FineTuningDenseOnlyFreezesEmbeddings)
{
    TaskSpec t = TaskSpec::fineTuning(FineTuneScope::DenseOnly);
    EXPECT_TRUE(t.needsBackward());
    EXPECT_TRUE(t.isTrainable(LayerClass::BaseDense));
    EXPECT_TRUE(t.isTrainable(LayerClass::Transformer));
    EXPECT_TRUE(t.isTrainable(LayerClass::MoE));
    EXPECT_FALSE(t.isTrainable(LayerClass::SparseEmbedding));
    EXPECT_FALSE(t.isTrainable(LayerClass::DenseEmbedding));
}

TEST(TaskSpec, FineTuningEmbeddingOnlyFreezesDense)
{
    TaskSpec t = TaskSpec::fineTuning(FineTuneScope::EmbeddingOnly);
    EXPECT_TRUE(t.isTrainable(LayerClass::SparseEmbedding));
    EXPECT_TRUE(t.isTrainable(LayerClass::DenseEmbedding));
    EXPECT_FALSE(t.isTrainable(LayerClass::BaseDense));
    EXPECT_FALSE(t.isTrainable(LayerClass::Transformer));
    // Frozen dense layers still propagate input gradients (~1x),
    // skipping the costly weight-gradient work (Insight 5).
    EXPECT_DOUBLE_EQ(t.backwardFlopsMultiplier(LayerClass::BaseDense),
                     1.0);
    EXPECT_DOUBLE_EQ(
        t.backwardFlopsMultiplier(LayerClass::SparseEmbedding), 2.0);
}

TEST(TaskSpec, GradientAndOptimizerResidency)
{
    TaskSpec t = TaskSpec::preTraining();
    // Dense layers: fp32 grads + Adam m/v.
    EXPECT_DOUBLE_EQ(t.gradBytesPerParam(LayerClass::BaseDense), 4.0);
    EXPECT_DOUBLE_EQ(t.optimizerBytesPerParam(LayerClass::BaseDense),
                     8.0);
    // Sparse tables: row-sparse grads, row-wise adagrad.
    EXPECT_DOUBLE_EQ(t.gradBytesPerParam(LayerClass::SparseEmbedding),
                     0.0);
    EXPECT_NEAR(t.optimizerBytesPerParam(LayerClass::SparseEmbedding),
                0.1, 1e-12);

    TaskSpec ft = TaskSpec::fineTuning(FineTuneScope::DenseOnly);
    EXPECT_DOUBLE_EQ(ft.gradBytesPerParam(LayerClass::SparseEmbedding),
                     0.0);
    EXPECT_DOUBLE_EQ(
        ft.optimizerBytesPerParam(LayerClass::SparseEmbedding), 0.0);
}

TEST(TaskSpec, Names)
{
    EXPECT_EQ(TaskSpec::preTraining().toString(), "pre-training");
    EXPECT_EQ(TaskSpec::inference().toString(), "inference");
    EXPECT_EQ(TaskSpec::fineTuning(FineTuneScope::EmbeddingOnly)
                  .toString(),
              "fine-tuning (embedding-only)");
    EXPECT_EQ(toString(TaskKind::PreTraining), "pre-training");
    EXPECT_EQ(toString(FineTuneScope::DenseOnly), "dense-only");
}

TEST(TaskSpec, InferencePhases)
{
    EXPECT_EQ(toString(InferencePhase::Batch), "batch");
    EXPECT_EQ(toString(InferencePhase::Prefill), "prefill");
    EXPECT_EQ(toString(InferencePhase::Decode), "decode");

    // The classic batch task is untouched by the phase split — its
    // toString (and therefore every engine cache key and golden) is
    // byte-identical to the pre-phase world.
    TaskSpec batch = TaskSpec::inference();
    EXPECT_EQ(batch.phase, InferencePhase::Batch);
    EXPECT_FALSE(batch.usesKvCache());
    EXPECT_EQ(batch.toString(), "inference");

    TaskSpec prefill = TaskSpec::prefill();
    EXPECT_EQ(prefill.kind, TaskKind::Inference);
    EXPECT_TRUE(prefill.usesKvCache());
    EXPECT_EQ(prefill.toString(), "inference (prefill)");

    TaskSpec decode = TaskSpec::decode(4096);
    EXPECT_TRUE(decode.usesKvCache());
    EXPECT_EQ(decode.decodeKvLength, 4096);
    EXPECT_EQ(decode.toString(), "inference (decode@4096)");

    // Every KV knob lands in the string: the engine memoizes on
    // task.toString(), so distinct tasks must never alias.
    TaskSpec capped = TaskSpec::decode(4096);
    capped.kvCapacityTokens = 4352;
    EXPECT_NE(capped.toString(), decode.toString());
    TaskSpec fp8 = TaskSpec::decode(4096);
    fp8.kvBytesPerElement = 1.0;
    EXPECT_NE(fp8.toString(), decode.toString());

    // Training tasks never use a KV cache regardless of the fields.
    TaskSpec training = TaskSpec::preTraining();
    training.phase = InferencePhase::Decode;
    EXPECT_FALSE(training.usesKvCache());
}

} // namespace madmax
