#include <gtest/gtest.h>

#include "hw/hw_zoo.hh"
#include "util/units.hh"

namespace madmax
{

using namespace units;

// Table III: DLRM training system aggregates.
TEST(HwZoo, DlrmTrainingSystemMatchesTableIII)
{
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    c.validate();
    EXPECT_EQ(c.numDevices(), 128);
    // 20 PFLOPS aggregate TF32.
    EXPECT_NEAR(c.aggregatePeakFlops(DataType::TF32), pflops(20),
                pflops(0.1));
    // 5 TB HBM capacity (GiB-based, allow 10%).
    EXPECT_NEAR(c.aggregateHbmCapacity(), tb(5), tb(0.55));
    // 199 TB/s aggregate HBM bandwidth (128 x 1.6).
    EXPECT_NEAR(c.aggregateHbmBandwidth(), tBps(204.8), tBps(6));
    // 38.4 TB/s intra-node unidirectional aggregate: 128 x 300 GB/s.
    EXPECT_NEAR(c.device.intraNodeBandwidth * 128, tBps(38.4), tBps(0.1));
    // 25.6 Tbps inter-node unidirectional aggregate: 128 x 200 Gbps.
    EXPECT_NEAR(c.device.interNodeBandwidth * 128, tbps(25.6), gBps(1));
    EXPECT_EQ(c.interFabric, FabricKind::RoCE);
}

// Table III: LLM training system aggregates.
TEST(HwZoo, LlmTrainingSystemMatchesTableIII)
{
    ClusterSpec c = hw_zoo::llmTrainingSystem();
    c.validate();
    EXPECT_EQ(c.numDevices(), 2048);
    EXPECT_NEAR(c.aggregatePeakFlops(DataType::TF32), pflops(319),
                pflops(1));
    EXPECT_NEAR(c.aggregateHbmCapacity(), tb(164), tb(18));
    EXPECT_NEAR(c.aggregateHbmBandwidth(), pBps(3.96), pBps(0.15));
    EXPECT_NEAR(c.device.interNodeBandwidth * 2048, tbps(409.6),
                gBps(10));
    EXPECT_EQ(c.interFabric, FabricKind::InfiniBand);
}

// Table IV device datasheets.
TEST(HwZoo, TableIVDevices)
{
    DeviceSpec a100 = hw_zoo::a100_40();
    EXPECT_DOUBLE_EQ(a100.peakFlopsTensor16, tflops(312));
    EXPECT_DOUBLE_EQ(a100.peakFlopsTf32, tflops(156));
    EXPECT_DOUBLE_EQ(a100.hbmCapacity, gib(40));
    EXPECT_DOUBLE_EQ(a100.hbmBandwidth, tBps(1.6));
    EXPECT_DOUBLE_EQ(a100.interNodeBandwidth, gbps(200));

    DeviceSpec h100 = hw_zoo::h100();
    EXPECT_DOUBLE_EQ(h100.peakFlopsTensor16, tflops(756));
    EXPECT_DOUBLE_EQ(h100.hbmCapacity, gib(80));
    EXPECT_DOUBLE_EQ(h100.hbmBandwidth, tBps(2.0));
    EXPECT_DOUBLE_EQ(h100.interNodeBandwidth, gbps(400));

    // SuperPOD: 9x the A100's per-device inter-node bandwidth
    // (Insight 10: "2x (9x for SuperPOD)").
    DeviceSpec pod = hw_zoo::h100SuperPod();
    EXPECT_NEAR(pod.interNodeBandwidth / a100.interNodeBandwidth, 9.0,
                0.01);
    // And ~4.5x the H100 DGX.
    EXPECT_NEAR(pod.interNodeBandwidth / h100.interNodeBandwidth, 4.5,
                0.01);

    DeviceSpec mi250 = hw_zoo::mi250x();
    EXPECT_DOUBLE_EQ(mi250.peakFlopsTensor16, tflops(383));
    EXPECT_DOUBLE_EQ(mi250.hbmCapacity, gib(128));

    DeviceSpec mi300 = hw_zoo::mi300x();
    EXPECT_DOUBLE_EQ(mi300.peakFlopsTensor16, tflops(1307));
    EXPECT_DOUBLE_EQ(mi300.hbmCapacity, gib(192));
    EXPECT_DOUBLE_EQ(mi300.hbmBandwidth, tBps(5.3));

    DeviceSpec g2 = hw_zoo::gaudi2();
    EXPECT_DOUBLE_EQ(g2.peakFlopsTensor16, tflops(400));
    EXPECT_DOUBLE_EQ(g2.hbmCapacity, gib(96));
    EXPECT_DOUBLE_EQ(g2.intraNodeBandwidth, gBps(262.5));
}

TEST(HwZoo, SimulatedPlatformsKeep128Devices)
{
    for (const ClusterSpec &c :
         {hw_zoo::h100System(), hw_zoo::h100SuperPodSystem(),
          hw_zoo::mi250xSystem(), hw_zoo::mi300xSystem(),
          hw_zoo::gaudi2System()}) {
        EXPECT_EQ(c.numDevices(), 128) << c.name;
        EXPECT_NO_THROW(c.validate()) << c.name;
    }
}

TEST(HwZoo, CloudInstancesSpanGenerationsAndBandwidths)
{
    auto instances = hw_zoo::cloudInstances(16);
    ASSERT_GE(instances.size(), 5u);

    bool has_v100 = false, has_a100 = false, has_h100 = false;
    double min_bw = 1e18, max_bw = 0.0;
    for (const auto &inst : instances) {
        EXPECT_NO_THROW(inst.cluster.validate()) << inst.name;
        EXPECT_GT(inst.a100PeakRatio, 0.0);
        std::string dev = inst.cluster.device.name;
        has_v100 |= dev.find("V100") != std::string::npos;
        has_a100 |= dev.find("A100") != std::string::npos;
        has_h100 |= dev.find("H100") != std::string::npos;
        min_bw = std::min(min_bw, inst.cluster.device.interNodeBandwidth);
        max_bw = std::max(max_bw, inst.cluster.device.interNodeBandwidth);
    }
    EXPECT_TRUE(has_v100);
    EXPECT_TRUE(has_a100);
    EXPECT_TRUE(has_h100);
    // Inter-node bandwidth spread of well over an order of magnitude
    // (Fig. 16: "<1 to 25 GB/s").
    EXPECT_GT(max_bw / min_bw, 10.0);
}

TEST(HwZoo, AwsP4dHasQuarterOfZionExInterBandwidth)
{
    // §V: p4d instances have "4x lower inter-node interconnect
    // bandwidth compared to systems enumerated in Table III".
    ClusterSpec p4d = hw_zoo::awsP4d(16);
    ClusterSpec zion = hw_zoo::dlrmTrainingSystem();
    EXPECT_NEAR(zion.device.interNodeBandwidth /
                    p4d.device.interNodeBandwidth,
                4.0, 0.01);
}

TEST(HwZoo, MixedInferenceFleetIsAValidTwoIslandCluster)
{
    ClusterSpec fleet = hw_zoo::mixedInferenceFleet();
    fleet.validate();
    ASSERT_TRUE(fleet.isHeterogeneous());
    ASSERT_EQ(fleet.groups.size(), 2u);
    EXPECT_EQ(fleet.groups[0].name, "h100-pool");
    EXPECT_EQ(fleet.groups[1].name, "a100-80-pool");
    EXPECT_EQ(fleet.totalDevices(), 2 * 8 + 4 * 8);

    // The compute-dense island outruns the capacity-dense island on
    // FLOPs; both have the same per-device HBM capacity, so the A100
    // pool's extra devices are what make it the decode island.
    ClusterSpec h = fleet.groupCluster(0);
    ClusterSpec a = fleet.groupCluster(1);
    EXPECT_GT(h.device.peakFlopsTensor16, a.device.peakFlopsTensor16);
    EXPECT_GT(a.aggregateHbmCapacity(), h.aggregateHbmCapacity());
}

} // namespace madmax
