#include <gtest/gtest.h>

#include "hw/device.hh"
#include "hw/hw_zoo.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace madmax
{

TEST(DataType, ElementSizes)
{
    EXPECT_DOUBLE_EQ(bytesOf(DataType::FP32), 4.0);
    EXPECT_DOUBLE_EQ(bytesOf(DataType::TF32), 4.0);
    EXPECT_DOUBLE_EQ(bytesOf(DataType::FP16), 2.0);
    EXPECT_DOUBLE_EQ(bytesOf(DataType::BF16), 2.0);
}

TEST(DataType, Names)
{
    EXPECT_EQ(toString(DataType::FP32), "fp32");
    EXPECT_EQ(toString(DataType::TF32), "tf32");
    EXPECT_EQ(toString(DataType::FP16), "fp16");
    EXPECT_EQ(toString(DataType::BF16), "bf16");
}

TEST(DeviceSpec, PeakFlopsByDtype)
{
    DeviceSpec a100 = hw_zoo::a100_40();
    EXPECT_DOUBLE_EQ(a100.peakFlops(DataType::BF16), units::tflops(312));
    EXPECT_DOUBLE_EQ(a100.peakFlops(DataType::FP16), units::tflops(312));
    EXPECT_DOUBLE_EQ(a100.peakFlops(DataType::TF32), units::tflops(156));
    EXPECT_DOUBLE_EQ(a100.peakFlops(DataType::FP32), units::tflops(19.5));
}

TEST(DeviceSpec, Tf32FallsBackToFp32OnVolta)
{
    DeviceSpec v100 = hw_zoo::v100_16();
    // No TF32 tensor cores on Volta: fp32 vector rate applies.
    EXPECT_DOUBLE_EQ(v100.peakFlops(DataType::TF32),
                     units::tflops(15.7));
    // fp16 tensor cores exist.
    EXPECT_DOUBLE_EQ(v100.peakFlops(DataType::FP16),
                     units::tflops(125));
}

TEST(DeviceSpec, MissingRatesAreFatal)
{
    DeviceSpec empty;
    empty.name = "no-flops";
    EXPECT_THROW(empty.peakFlops(DataType::FP32), ConfigError);
    EXPECT_THROW(empty.peakFlops(DataType::BF16), ConfigError);
}

} // namespace madmax
