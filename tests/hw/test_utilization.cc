#include <gtest/gtest.h>

#include "hw/utilization.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(SmUtilizationModel, SaturatingShape)
{
    SmUtilizationModel m(0.8, 1e12);
    // Half saturation at the knee.
    EXPECT_NEAR(m.utilization(1e12), 0.4, 1e-12);
    // Approaches the ceiling for big work.
    EXPECT_NEAR(m.utilization(1e15), 0.8, 1e-3);
    // Small work underutilizes.
    EXPECT_LT(m.utilization(1e10), 0.01);
}

TEST(SmUtilizationModel, MonotonicInWork)
{
    SmUtilizationModel m(0.7, 5e11);
    double prev = 0.0;
    for (double f = 1e9; f < 1e15; f *= 10.0) {
        double u = m.utilization(f);
        EXPECT_GT(u, prev);
        EXPECT_LE(u, 0.7);
        prev = u;
    }
}

TEST(SmUtilizationModel, DegenerateWorkIsFullyEfficient)
{
    SmUtilizationModel m(0.7, 5e11);
    EXPECT_DOUBLE_EQ(m.utilization(0.0), 0.7);
    EXPECT_DOUBLE_EQ(m.utilization(-1.0), 0.7);
}

TEST(SmUtilizationModel, RejectsBadParameters)
{
    EXPECT_THROW(SmUtilizationModel(0.0, 1e12), ConfigError);
    EXPECT_THROW(SmUtilizationModel(1.5, 1e12), ConfigError);
    EXPECT_THROW(SmUtilizationModel(0.7, 0.0), ConfigError);
    EXPECT_THROW(SmUtilizationModel(0.7, -1.0), ConfigError);
}

} // namespace madmax
