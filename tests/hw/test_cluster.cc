#include <gtest/gtest.h>

#include "hw/cluster.hh"
#include "hw/hw_zoo.hh"
#include "hw/topology.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace madmax
{

namespace
{

ClusterSpec
testCluster()
{
    return hw_zoo::dlrmTrainingSystem();
}

} // namespace

TEST(ClusterSpec, DeviceCounts)
{
    ClusterSpec c = testCluster();
    EXPECT_EQ(c.devicesPerNode, 8);
    EXPECT_EQ(c.numNodes, 16);
    EXPECT_EQ(c.numDevices(), 128);
}

TEST(ClusterSpec, EffectiveBandwidthsApplyUtilization)
{
    ClusterSpec c = testCluster();
    EXPECT_DOUBLE_EQ(c.effIntraBandwidth(),
                     c.device.intraNodeBandwidth * c.util.intraLink);
    EXPECT_DOUBLE_EQ(c.effInterBandwidth(),
                     c.device.interNodeBandwidth * c.util.interLink);
}

TEST(ClusterSpec, Aggregates)
{
    ClusterSpec c = testCluster();
    EXPECT_DOUBLE_EQ(c.aggregateHbmCapacity(),
                     c.device.hbmCapacity * 128);
    EXPECT_DOUBLE_EQ(c.aggregateHbmBandwidth(),
                     c.device.hbmBandwidth * 128);
    EXPECT_DOUBLE_EQ(c.aggregatePeakFlops(DataType::TF32),
                     c.device.peakFlopsTf32 * 128);
}

TEST(ClusterSpec, ValidateRejectsNonsense)
{
    ClusterSpec c = testCluster();
    c.numNodes = 0;
    EXPECT_THROW(c.validate(), ConfigError);

    c = testCluster();
    c.devicesPerNode = -1;
    EXPECT_THROW(c.validate(), ConfigError);

    c = testCluster();
    c.device.hbmCapacity = 0.0;
    EXPECT_THROW(c.validate(), ConfigError);

    c = testCluster();
    c.util.compute = 1.5;
    EXPECT_THROW(c.validate(), ConfigError);

    c = testCluster();
    c.util.interLink = 0.0;
    EXPECT_THROW(c.validate(), ConfigError);
}

TEST(ClusterSpec, ScaledVariantsAreIndependentCopies)
{
    ClusterSpec base = testCluster();
    ClusterSpec boosted = base.withComputeScale(10.0);
    EXPECT_DOUBLE_EQ(boosted.device.peakFlopsTf32,
                     base.device.peakFlopsTf32 * 10.0);
    EXPECT_DOUBLE_EQ(boosted.device.peakFlopsTensor16,
                     base.device.peakFlopsTensor16 * 10.0);
    // Other capabilities untouched.
    EXPECT_DOUBLE_EQ(boosted.device.hbmCapacity, base.device.hbmCapacity);

    ClusterSpec cap = base.withHbmCapacityScale(2.0);
    EXPECT_DOUBLE_EQ(cap.device.hbmCapacity,
                     base.device.hbmCapacity * 2.0);
    EXPECT_DOUBLE_EQ(cap.device.hbmBandwidth, base.device.hbmBandwidth);

    ClusterSpec bw = base.withHbmBandwidthScale(3.0);
    EXPECT_DOUBLE_EQ(bw.device.hbmBandwidth,
                     base.device.hbmBandwidth * 3.0);

    ClusterSpec intra = base.withIntraBandwidthScale(4.0);
    EXPECT_DOUBLE_EQ(intra.device.intraNodeBandwidth,
                     base.device.intraNodeBandwidth * 4.0);

    ClusterSpec inter = base.withInterBandwidthScale(5.0);
    EXPECT_DOUBLE_EQ(inter.device.interNodeBandwidth,
                     base.device.interNodeBandwidth * 5.0);

    ClusterSpec nodes = base.withNumNodes(1);
    EXPECT_EQ(nodes.numNodes, 1);
    EXPECT_EQ(nodes.numDevices(), 8);
}

TEST(ClusterSpec, ValidateCoversAttachedTopology)
{
    ClusterSpec c = hw_zoo::withTopology(
        testCluster(), TopologySpec::flatEquivalent(testCluster()));
    c.validate(); // Consistent stack passes.

    // Mutating the cluster shape out from under the stack must fail
    // cluster validation (the topology can no longer describe it).
    ClusterSpec narrowed = c;
    narrowed.devicesPerNode = 4;
    EXPECT_THROW(narrowed.validate(), ConfigError);
}

TEST(ClusterSpec, WithNumNodesDropsStaleTopology)
{
    ClusterSpec c = hw_zoo::withTopology(
        testCluster(), hw_zoo::dcRailTopology(testCluster()));
    ASSERT_NE(c.topology, nullptr);

    // Resizing invalidates the tier stack: node-count sweeps fall
    // back to flat pricing instead of failing validation.
    ClusterSpec resized = c.withNumNodes(4);
    EXPECT_EQ(resized.topology, nullptr);
    resized.validate();

    // A no-op resize keeps the stack.
    ClusterSpec same = c.withNumNodes(c.numNodes);
    EXPECT_NE(same.topology, nullptr);
    same.validate();
}

TEST(FabricKind, Names)
{
    EXPECT_EQ(toString(FabricKind::NVLink), "NVLink");
    EXPECT_EQ(toString(FabricKind::RoCE), "RoCE");
    EXPECT_EQ(toString(FabricKind::InfiniBand), "InfiniBand");
}

namespace
{

/** A two-group mixed fleet for the heterogeneity tests. */
ClusterSpec
twoGroupCluster()
{
    ClusterSpec c;
    c.name = "mixed";
    c.interFabric = FabricKind::InfiniBand;
    DeviceGroup fast;
    fast.name = "fast";
    fast.device = hw_zoo::h100();
    fast.devicesPerNode = 8;
    fast.numNodes = 2;
    c.groups.push_back(fast);
    DeviceGroup big;
    big.name = "big";
    big.device = hw_zoo::a100_80();
    big.devicesPerNode = 4;
    big.numNodes = 6;
    c.groups.push_back(big);
    return c;
}

} // namespace

TEST(DeviceGroups, GroupClusterProjectsAnIsland)
{
    ClusterSpec c = twoGroupCluster();
    EXPECT_TRUE(c.isHeterogeneous());
    EXPECT_EQ(c.totalDevices(), 16 + 24);
    c.validate();

    ClusterSpec island = c.groupCluster(1);
    EXPECT_FALSE(island.isHeterogeneous());
    EXPECT_EQ(island.name, "mixed/big");
    EXPECT_EQ(island.device.name, "A100-80GB");
    EXPECT_EQ(island.devicesPerNode, 4);
    EXPECT_EQ(island.numNodes, 6);
    // Cluster-level scale-out fabric and utilizations carry over, so
    // islands price collectives exactly like a standalone cluster.
    EXPECT_EQ(island.interFabric, c.interFabric);
    EXPECT_EQ(island.util.interLink, c.util.interLink);
    island.validate();
}

TEST(DeviceGroups, ValidateRejectsMalformedFleets)
{
    // Duplicate group names would make placements ambiguous.
    ClusterSpec dup = twoGroupCluster();
    dup.groups[1].name = "fast";
    EXPECT_THROW(dup.validate(), ConfigError);

    ClusterSpec unnamed = twoGroupCluster();
    unnamed.groups[0].name.clear();
    EXPECT_THROW(unnamed.validate(), ConfigError);

    // Groups are stitched at the scale-out tier; a group whose device
    // has no inter-node bandwidth cannot reach the others.
    ClusterSpec stranded = twoGroupCluster();
    stranded.groups[0].device.interNodeBandwidth = 0.0;
    EXPECT_THROW(stranded.validate(), ConfigError);

    // An explicit topology describes ONE homogeneous tier stack; it
    // cannot coexist with device groups.
    ClusterSpec conflicted = twoGroupCluster();
    conflicted.topology = std::make_shared<const TopologySpec>(
        hw_zoo::flatTopologyPreset(hw_zoo::dlrmTrainingSystem()));
    EXPECT_THROW(conflicted.validate(), ConfigError);

    // Group shapes are validated like standalone clusters.
    ClusterSpec empty_group = twoGroupCluster();
    empty_group.groups[1].numNodes = 0;
    EXPECT_THROW(empty_group.validate(), ConfigError);
}

} // namespace madmax
