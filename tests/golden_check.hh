/**
 * @file
 * Shared golden-snapshot comparison for the snapshot suites
 * (tests/core/test_golden_reports.cc, tests/dse/test_pareto_engine.cc).
 * Snapshots live in tests/golden/; regenerate them — only when an
 * *intentional* model change lands — with:
 *
 *   MADMAX_REGEN_GOLDEN=1 ./test_golden_reports
 *   MADMAX_REGEN_GOLDEN=1 ./test_pareto_engine
 *
 * CI's golden-drift step runs exactly that and `git diff
 * --exit-code`s the result, so silent report drift cannot land even
 * if a golden test is skipped or filtered out.
 */

#ifndef MADMAX_TESTS_GOLDEN_CHECK_HH
#define MADMAX_TESTS_GOLDEN_CHECK_HH

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace madmax::testing
{

inline std::string
goldenDir()
{
    return std::string(MADMAX_CONFIG_DIR) + "/../tests/golden";
}

/** Compare @p got against the checked-in golden file, or rewrite the
 *  file when MADMAX_REGEN_GOLDEN is set. */
inline void
checkGolden(const std::string &file, const std::string &got)
{
    const std::string path = goldenDir() + "/" + file;
    if (std::getenv("MADMAX_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with MADMAX_REGEN_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    // EXPECT_EQ on multi-MB strings prints unusable diffs; locate the
    // first differing line instead.
    if (got == want.str()) {
        SUCCEED();
        return;
    }
    std::istringstream gotLines(got), wantLines(want.str());
    std::string g, w;
    int line = 1;
    while (std::getline(gotLines, g) && std::getline(wantLines, w)) {
        ASSERT_EQ(g, w) << file << ": first divergence at line " << line;
        ++line;
    }
    FAIL() << file << ": dumps differ in length (" << got.size()
           << " vs " << want.str().size() << " bytes)";
}

} // namespace madmax::testing

#endif // MADMAX_TESTS_GOLDEN_CHECK_HH
