#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/table.hh"

namespace madmax
{

TEST(AsciiTable, RendersAlignedColumns)
{
    AsciiTable t({"model", "params"});
    t.addRow({"DLRM-A", "793B"});
    t.addRow({"GPT-3", "175B"});
    std::string s = t.toString();
    EXPECT_NE(s.find("| model "), std::string::npos);
    EXPECT_NE(s.find("| DLRM-A "), std::string::npos);
    EXPECT_NE(s.find("| 793B "), std::string::npos);
    // Every line has the same width.
    size_t first_len = s.find('\n');
    size_t pos = 0;
    while (pos < s.size()) {
        size_t next = s.find('\n', pos);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(AsciiTable, RejectsMismatchedRow)
{
    AsciiTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
    EXPECT_THROW(AsciiTable({}), ConfigError);
}

TEST(AsciiTable, SeparatorRows)
{
    AsciiTable t({"x"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 3u);
    std::string s = t.toString();
    int rules = 0;
    size_t pos = 0;
    while ((pos = s.find("+-", pos)) != std::string::npos) {
        ++rules;
        pos = s.find('\n', pos);
    }
    EXPECT_EQ(rules, 4);
}

TEST(AsciiBar, ProportionalWidth)
{
    EXPECT_EQ(asciiBar(1.0, 1.0, 10), "##########");
    EXPECT_EQ(asciiBar(0.5, 1.0, 10), "#####");
    EXPECT_EQ(asciiBar(0.0, 1.0, 10), "");
    EXPECT_EQ(asciiBar(2.0, 1.0, 10), "##########"); // Clamped.
    EXPECT_EQ(asciiBar(1.0, 0.0, 10), "");           // Degenerate max.
}

} // namespace madmax
