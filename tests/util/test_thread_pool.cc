/**
 * @file
 * ThreadPool tests: coverage and exactly-once execution of
 * parallelFor, cross-worker stealing, exception propagation, and
 * waitIdle semantics. Run under TSan in CI (see the thread-sanitizer
 * job) to keep the engine's concurrency continuously checked.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace madmax
{

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForUsesMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> seen;
    // Tasks long enough that one worker cannot drain the batch before
    // the others wake.
    pool.parallelFor(16, [&](size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
    });
    EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, ParallelForSmallerThanPool)
{
    ThreadPool pool(8);
    std::atomic<int> ran{0};
    pool.parallelFor(3, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, ParallelForZeroAndOne)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.parallelFor(0, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 0);
    pool.parallelFor(1, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](size_t i) {
                             if (i == 17)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // Pool stays usable after the failed batch.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, SubmitAndWaitIdle)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmittedBatchRunsConcurrently)
{
    // 16 sleeping tasks across 4 workers: serial execution would take
    // ~160 ms; concurrent execution (round-robin placement plus
    // stealing of any leftovers) must land well under that.
    ThreadPool pool(4);
    auto start = std::chrono::steady_clock::now();
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            ran.fetch_add(1);
        });
    }
    pool.waitIdle();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    EXPECT_EQ(ran.load(), 16);
    // 40 ms ideal; allow generous CI slack while still ruling out
    // serial execution (160 ms).
    EXPECT_LT(ms, 120.0);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1);
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::defaultConcurrency());
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, DestructorDrainsTasksSubmittedWhileDraining)
{
    // The documented shutdown contract (see ~ThreadPool): destruction
    // waits for every task, INCLUDING tasks that running tasks submit
    // while the drain is in progress, and cannot deadlock doing so.
    // The parent tasks sleep so the destructor reliably begins while
    // they are still queued or running.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i) {
            pool.submit([&ran, &pool] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                pool.submit([&ran] { ran.fetch_add(1); });
                ran.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(ran.load(), 16);
}

} // namespace madmax
