#include <gtest/gtest.h>

#include "util/strfmt.hh"

namespace madmax
{

TEST(Strfmt, BasicFormatting)
{
    EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("%s", "hello"), "hello");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strfmt, LongStringsExpandBuffer)
{
    std::string big(5000, 'x');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(Strfmt, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(1024), "1.00 KiB");
    EXPECT_EQ(formatBytes(40.0 * 1024 * 1024 * 1024), "40.00 GiB");
    EXPECT_EQ(formatBytes(1.5 * 1024 * 1024), "1.50 MiB");
}

TEST(Strfmt, FormatBandwidth)
{
    EXPECT_EQ(formatBandwidth(1.6e12), "1.60 TB/s");
    EXPECT_EQ(formatBandwidth(25e9), "25.00 GB/s");
}

TEST(Strfmt, FormatFlops)
{
    EXPECT_EQ(formatFlops(312e12), "312.00 TFLOPS");
    EXPECT_EQ(formatFlops(20e15), "20.00 PFLOPS");
}

TEST(Strfmt, FormatTimeAdaptiveUnits)
{
    EXPECT_EQ(formatTime(0.0653), "65.300 ms");
    EXPECT_EQ(formatTime(2.5), "2.500 s");
    EXPECT_EQ(formatTime(90.0), "1.50 min");
    EXPECT_EQ(formatTime(7200.0), "2.00 hr");
    EXPECT_EQ(formatTime(1814400.0), "21.00 days");
    EXPECT_EQ(formatTime(5e-6), "5.000 us");
    EXPECT_EQ(formatTime(5e-9), "5.000 ns");
}

TEST(Strfmt, FormatCount)
{
    EXPECT_EQ(formatCount(793e9), "793.00B");
    EXPECT_EQ(formatCount(638e6), "638.00M");
    EXPECT_EQ(formatCount(1.8e12), "1.80T");
    EXPECT_EQ(formatCount(42), "42");
}

TEST(Strfmt, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.7546), "75.46%");
    EXPECT_EQ(formatPercent(1.0), "100.00%");
}

} // namespace madmax
