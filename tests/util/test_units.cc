#include <gtest/gtest.h>

#include "util/units.hh"

using namespace madmax::units;

TEST(Units, BinaryCapacities)
{
    EXPECT_DOUBLE_EQ(kib(1), 1024.0);
    EXPECT_DOUBLE_EQ(mib(1), 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(gib(40), 40.0 * 1024.0 * 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(tib(2), 2.0 * GiB * 1024.0);
}

TEST(Units, DecimalSizes)
{
    EXPECT_DOUBLE_EQ(kb(1), 1e3);
    EXPECT_DOUBLE_EQ(mb(22.61), 22.61e6);
    EXPECT_DOUBLE_EQ(gb(1.5), 1.5e9);
    EXPECT_DOUBLE_EQ(tb(3.2), 3.2e12);
}

TEST(Units, BitBandwidthConvertsToBytes)
{
    // 200 Gbps NIC = 25 GB/s.
    EXPECT_DOUBLE_EQ(gbps(200), 25e9);
    // Table III: 25.6 Tbps aggregate = 3.2 TB/s.
    EXPECT_DOUBLE_EQ(tbps(25.6), 3.2e12);
    EXPECT_DOUBLE_EQ(mbps(8), 1e6);
}

TEST(Units, ByteBandwidth)
{
    EXPECT_DOUBLE_EQ(gBps(600), 600e9);
    EXPECT_DOUBLE_EQ(tBps(1.6), 1.6e12);
    EXPECT_DOUBLE_EQ(pBps(3.96), 3.96e15);
}

TEST(Units, Flops)
{
    EXPECT_DOUBLE_EQ(tflops(312), 312e12);
    EXPECT_DOUBLE_EQ(pflops(20), 20e15);
    EXPECT_DOUBLE_EQ(gflops(1), 1e9);
}

TEST(Units, TimeConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(msec(65.3), 0.0653);
    EXPECT_DOUBLE_EQ(toMsec(msec(65.3)), 65.3);
    EXPECT_DOUBLE_EQ(hours(2), 7200.0);
    EXPECT_DOUBLE_EQ(toHours(hours(2)), 2.0);
    EXPECT_DOUBLE_EQ(days(21), 21.0 * 86400.0);
    EXPECT_DOUBLE_EQ(toDays(days(21)), 21.0);
    EXPECT_DOUBLE_EQ(usec(5), 5e-6);
    EXPECT_DOUBLE_EQ(minutes(3), 180.0);
}

TEST(Units, Counts)
{
    EXPECT_DOUBLE_EQ(billion(793), 793e9);
    EXPECT_DOUBLE_EQ(trillion(1.8), 1.8e12);
    EXPECT_DOUBLE_EQ(million(638), 638e6);
    EXPECT_DOUBLE_EQ(kilo(64), 64e3);
}
