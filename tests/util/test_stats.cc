#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/stats.hh"

namespace madmax
{

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
    EXPECT_THROW(mean({}), InternalError);
}

TEST(Stats, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_THROW(median({}), InternalError);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_THROW(geomean({1.0, 0.0}), InternalError);
    EXPECT_THROW(geomean({-1.0}), InternalError);
}

TEST(Stats, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 2.0, 3.0, 4.0}), 1.2909944487358056, 1e-12);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.numBins(), 5u);
    h.add(0.5);   // bin 0
    h.add(9.9);   // bin 4
    h.add(-3.0);  // clamps into bin 0
    h.add(42.0);  // clamps into bin 4
    h.add(5.0);   // bin 2
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.binHi(4), 10.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 10.0, 0), ConfigError);
    EXPECT_THROW(Histogram(10.0, 0.0, 5), ConfigError);
}

TEST(Logging, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(fatal("user error"), ConfigError);
    EXPECT_THROW(panic("bug"), InternalError);
    try {
        fatal("the message");
    } catch (const ConfigError &e) {
        EXPECT_STREQ(e.what(), "the message");
    }
}

} // namespace madmax
