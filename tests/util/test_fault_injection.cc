/**
 * @file
 * FaultInjection framework tests: script grammar (accepted and
 * rejected forms), every action payload, every trigger shape —
 * including the determinism contract that the same script against the
 * same call sequence injects the same faults — plus the counters the
 * chaos suite asserts and the FaultScope RAII guard.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <new>
#include <vector>

#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/** Evaluate a point N times, collecting fire() payloads. */
std::vector<int>
firePattern(const char *point, int n)
{
    std::vector<int> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(faultPoint(point));
    return out;
}

} // namespace

TEST(FaultInjection, InactiveByDefaultAndZeroPayload)
{
    FaultInjection::clearAll();
    EXPECT_FALSE(FaultInjection::active());
    EXPECT_EQ(faultPoint("nowhere"), 0);
    EXPECT_NO_THROW(faultPointThrow("nowhere"));
    EXPECT_TRUE(FaultInjection::stats().empty());
}

TEST(FaultInjection, ErrnoActionByNameAndByNumber)
{
    {
        FaultScope scope("p=errno:EMFILE");
        EXPECT_TRUE(FaultInjection::active());
        EXPECT_EQ(faultPoint("p"), EMFILE);
        EXPECT_EQ(faultPoint("unrelated"), 0);
    }
    {
        FaultScope scope("p=errno:11");
        EXPECT_EQ(faultPoint("p"), 11);
    }
}

TEST(FaultInjection, ThrowBadallocShortAndDelayActions)
{
    {
        FaultScope scope("p=throw");
        EXPECT_THROW(faultPoint("p"), InjectedFault);
    }
    {
        // Script whitespace is insignificant everywhere, so messages
        // cannot carry spaces — hyphens are the convention.
        FaultScope scope("p=throw:custom-message");
        try {
            faultPoint("p");
            FAIL() << "expected InjectedFault";
        } catch (const InjectedFault &e) {
            EXPECT_STREQ(e.what(), "custom-message");
        }
    }
    {
        FaultScope scope("p=badalloc");
        EXPECT_THROW(faultPoint("p"), std::bad_alloc);
    }
    {
        FaultScope scope("p=short");
        EXPECT_EQ(faultPoint("p"), FaultInjection::kShortIo);
    }
    {
        // A delay is observable only as time; the payload contract is
        // "sleep, then behave normally" — fire() returns 0.
        FaultScope scope("p=delay:1");
        EXPECT_EQ(faultPoint("p"), 0);
    }
}

TEST(FaultInjection, FaultPointThrowPromotesAnyPayload)
{
    FaultScope scope("cfg=errno:EIO");
    EXPECT_THROW(faultPointThrow("cfg"), InjectedFault);
}

TEST(FaultInjection, NthTriggerFiresExactlyOnce)
{
    FaultScope scope("p=errno:EIO@nth:3");
    EXPECT_EQ(firePattern("p", 5),
              (std::vector<int>{0, 0, EIO, 0, 0}));
}

TEST(FaultInjection, FirstTriggerFiresPrefix)
{
    FaultScope scope("p=errno:EIO@first:2");
    EXPECT_EQ(firePattern("p", 4),
              (std::vector<int>{EIO, EIO, 0, 0}));
}

TEST(FaultInjection, EveryTriggerFiresPeriodically)
{
    FaultScope scope("p=errno:EIO@every:2");
    EXPECT_EQ(firePattern("p", 6),
              (std::vector<int>{0, EIO, 0, EIO, 0, EIO}));
}

TEST(FaultInjection, RangeTriggerFiresInclusiveWindow)
{
    FaultScope scope("p=errno:EIO@range:2-3");
    EXPECT_EQ(firePattern("p", 5),
              (std::vector<int>{0, EIO, EIO, 0, 0}));
}

TEST(FaultInjection, ProbTriggerIsDeterministicPerSeed)
{
    const char *script = "p=errno:EIO@prob:0.5,seed:42";
    std::vector<int> first, second;
    {
        FaultScope scope(script);
        first = firePattern("p", 64);
    }
    {
        FaultScope scope(script);
        second = firePattern("p", 64);
    }
    // Same seed, same call sequence -> identical injection pattern
    // (the determinism the chaos suite's exact-counter asserts rest
    // on); and p=0.5 over 64 draws fires at least once both ways.
    EXPECT_EQ(first, second);
    EXPECT_NE(first, std::vector<int>(64, 0));

    std::vector<int> other;
    {
        FaultScope scope("p=errno:EIO@prob:0.5,seed:43");
        other = firePattern("p", 64);
    }
    EXPECT_NE(other, first); // A different seed draws differently.
}

TEST(FaultInjection, StatsCountHitsAndInjections)
{
    FaultScope scope("a=errno:EIO@nth:2;b=delay:1");
    firePattern("a", 3);
    firePattern("b", 2);
    std::vector<FaultPointStats> stats = FaultInjection::stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].point, "a");
    EXPECT_EQ(stats[0].hits, 3);
    EXPECT_EQ(stats[0].injected, 1);
    EXPECT_EQ(stats[1].point, "b");
    EXPECT_EQ(stats[1].hits, 2);
    EXPECT_EQ(stats[1].injected, 2);
}

TEST(FaultInjection, LaterClauseReplacesEarlierForSamePoint)
{
    FaultScope scope("p=errno:EIO;p=errno:EMFILE");
    EXPECT_EQ(faultPoint("p"), EMFILE);
}

TEST(FaultInjection, ScopeDisarmsOnDestruction)
{
    {
        FaultScope scope("p=errno:EIO");
        EXPECT_TRUE(FaultInjection::active());
    }
    EXPECT_FALSE(FaultInjection::active());
    EXPECT_EQ(faultPoint("p"), 0);
}

TEST(FaultInjection, MalformedScriptsAreRejectedAtomically)
{
    for (const char *bad : {
             "p",                 // no '='
             "p=",                // no action
             "p=frobnicate",      // unknown action
             "p=errno:",          // missing errno
             "p=errno:NOSUCHERR", // unknown errno name
             "p=errno:EIO@",      // empty trigger
             "p=errno:EIO@nth:0", // counts are 1-based
             "p=errno:EIO@nth:x",
             "p=errno:EIO@range:5-2", // inverted range
             "p=errno:EIO@prob:1.5",  // probability out of [0, 1]
             "p=errno:EIO@moon:full", // unknown trigger
             "=errno:EIO",            // empty point name
         }) {
        EXPECT_THROW(FaultInjection::configure(bad), ConfigError)
            << "accepted: " << bad;
        // Rejection must not half-arm the script.
        EXPECT_FALSE(FaultInjection::active()) << bad;
    }
}

TEST(FaultInjection, ConfigureFromEnvReadsMadmaxFaults)
{
    ::setenv("MADMAX_FAULTS", "env.point=errno:EIO", 1);
    FaultInjection::configureFromEnv();
    EXPECT_EQ(faultPoint("env.point"), EIO);
    FaultInjection::clearAll();
    ::unsetenv("MADMAX_FAULTS");

    // Absent variable: a no-op, not an error.
    FaultInjection::configureFromEnv();
    EXPECT_FALSE(FaultInjection::active());
}

} // namespace madmax
