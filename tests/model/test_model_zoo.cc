#include <gtest/gtest.h>

#include "model/model_zoo.hh"
#include "util/units.hh"

namespace madmax
{

using namespace units;

namespace
{

struct TableIIRow
{
    const char *name;
    double params;          ///< <= 0 when the paper leaves it blank.
    double flopsPerToken;
    double lookupBytes;     ///< <= 0 when blank.
    long globalBatch;
    long context;
};

// Table II of the paper, as published.
const TableIIRow kTableII[] = {
    {"DLRM-A", 793e9, 638e6, 22.61e6, 65536, 1},
    {"DLRM-A-Transformer", 795e9, 2.6e9, 13.19e6, 65536, 1},
    {"DLRM-A-MoE", -1, 957e6, 22.61e6, 65536, 1},
    {"DLRM-B", 332e9, 60e6, 49.2e3, 262144, 1},
    {"DLRM-B-Transformer", 333e9, 2.1e9, 32.8e3, 262144, 1},
    {"DLRM-B-MoE", -1, 90e6, 42.8e3, 262144, 1},
    {"GPT-3", 175e9, 350e9, -1, 2048, 2048},
    {"LLaMA-65B", 65.2e9, 130.4e9, -1, 2048, 2048},
    {"LLaMA2-70B", 70e9, 140e9, -1, 1024, 4096},
    {"LLM-MoE", 1.8e12, 550e9, -1, 512, 8192},
};

} // namespace

class TableIISuite : public ::testing::TestWithParam<size_t>
{
};

TEST_P(TableIISuite, AggregatesMatchPaper)
{
    const TableIIRow &row = kTableII[GetParam()];
    std::vector<ModelDesc> suite = model_zoo::tableIISuite();
    ASSERT_EQ(suite.size(), 10u);
    const ModelDesc &m = suite[GetParam()];
    EXPECT_EQ(m.name, row.name);
    EXPECT_NO_THROW(m.validate());

    ModelTotals t = m.graph.totals();
    if (row.params > 0) {
        EXPECT_NEAR(t.paramCount / row.params, 1.0, 0.03)
            << "param count off for " << row.name;
    }
    EXPECT_NEAR(m.forwardFlopsPerToken() / row.flopsPerToken, 1.0, 0.05)
        << "FLOPs/token off for " << row.name;
    if (row.lookupBytes > 0) {
        EXPECT_NEAR(t.lookupBytesPerSample / row.lookupBytes, 1.0, 0.02)
            << "lookup bytes off for " << row.name;
    }
    EXPECT_EQ(m.globalBatchSize, row.globalBatch);
    EXPECT_EQ(m.contextLength, row.context);
}

INSTANTIATE_TEST_SUITE_P(AllModels, TableIISuite,
                         ::testing::Range<size_t>(0, 10));

TEST(ModelZoo, DlrmEmbeddingDominatesParameters)
{
    // O1 / Insight 1: 99.96% of DLRM-A parameters live in embeddings.
    ModelDesc m = model_zoo::dlrmA();
    ModelTotals t = m.graph.totals();
    double emb = t.paramsByClass.at(LayerClass::SparseEmbedding);
    EXPECT_GT(emb / t.paramCount, 0.999);
}

TEST(ModelZoo, Gpt3WordEmbeddingsAreTiny)
{
    // Insight 2: word embeddings are ~0.37% of GPT-3.
    ModelDesc m = model_zoo::gpt3();
    ModelTotals t = m.graph.totals();
    double emb = t.paramsByClass.at(LayerClass::DenseEmbedding);
    EXPECT_LT(emb / t.paramCount, 0.005);
    EXPECT_GT(emb / t.paramCount, 0.002);
}

TEST(ModelZoo, RecommendationVsLlmResourceAsymmetry)
{
    // O2: DLRMs need >20x the sparse-lookup bandwidth of LLMs yet far
    // fewer FLOPs per sample.
    ModelDesc dlrm = model_zoo::dlrmA();
    ModelDesc llm = model_zoo::llama65b();
    double dlrm_lookup = dlrm.graph.totals().lookupBytesPerSample /
        dlrm.contextLength;
    double llm_lookup = llm.graph.totals().lookupBytesPerSample /
        llm.contextLength;
    EXPECT_GT(dlrm_lookup / llm_lookup, 20.0);
    EXPECT_LT(dlrm.forwardFlopsPerToken(), llm.forwardFlopsPerToken());
}

TEST(ModelZoo, MoeVariantsScaleCapacityFasterThanCompute)
{
    ModelDesc base = model_zoo::dlrmA();
    ModelDesc moe = model_zoo::dlrmAMoe();
    double base_dense = 0.0, moe_total = 0.0;
    auto bt = base.graph.totals();
    auto mt = moe.graph.totals();
    base_dense = bt.paramCount - bt.paramsByClass[LayerClass::SparseEmbedding];
    moe_total = mt.paramCount - mt.paramsByClass[LayerClass::SparseEmbedding];
    // Dense+expert capacity grows much faster than FLOPs.
    double capacity_ratio = moe_total / base_dense;
    double flops_ratio = mt.forwardFlopsPerSample / bt.forwardFlopsPerSample;
    EXPECT_GT(capacity_ratio, 5.0);
    EXPECT_LT(flops_ratio, 2.0);
}

TEST(ModelZoo, Llama2ContextVariant)
{
    ModelDesc base = model_zoo::llama2_70b();
    ModelDesc ctx8k = model_zoo::llama2WithContext(8192);
    EXPECT_EQ(ctx8k.contextLength, 8192);
    // Same architecture: parameter count unchanged.
    EXPECT_NEAR(ctx8k.graph.totals().paramCount /
                    base.graph.totals().paramCount,
                1.0, 1e-9);
    // The sequence batch is held while context doubles (Fig. 15), so
    // tokens per iteration double from the base's 4M.
    EXPECT_NEAR(base.tokensPerIteration(), 4194304.0, 1.0);
    EXPECT_NEAR(ctx8k.tokensPerIteration(), 2.0 * 4194304.0, 1.0);
    // Longer context means more FLOPs/token (quadratic attention).
    EXPECT_GT(ctx8k.forwardFlopsPerToken(), base.forwardFlopsPerToken());
}

TEST(ModelZoo, VitSizesMatchPublishedScales)
{
    struct { model_zoo::VitSize size; double params; } cases[] = {
        {model_zoo::VitSize::L, 0.30e9},
        {model_zoo::VitSize::H, 0.63e9},
        {model_zoo::VitSize::G, 1.84e9},
        {model_zoo::VitSize::B22, 21.7e9},
        {model_zoo::VitSize::B120, 120.8e9},
    };
    for (const auto &c : cases) {
        ModelDesc m = model_zoo::vit(c.size, 2048);
        EXPECT_NEAR(m.graph.totals().paramCount / c.params, 1.0, 0.06)
            << model_zoo::toString(c.size);
        EXPECT_EQ(m.globalBatchSize, 2048);
    }
}

TEST(ModelZoo, LlmMoeUsesSixteenExpertsTwoActive)
{
    ModelDesc m = model_zoo::llmMoe();
    bool found = false;
    for (int i = 0; i < m.graph.numLayers(); ++i) {
        if (m.graph.layer(i).kind() == LayerKind::MoeFeedForward) {
            const auto &moe =
                static_cast<const MoeFeedForwardLayer &>(m.graph.layer(i));
            EXPECT_EQ(moe.numExperts(), 16);
            EXPECT_EQ(moe.activeExperts(), 2);
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ModelZoo, Llama2ServingClassShapesMatchThePaper)
{
    // LLaMA2-7B [Touvron et al.]: 32 layers of h = 4096, 32 full-KV
    // heads, SwiGLU ffn 11008 — about 6.7B parameters.
    ModelDesc m7 = model_zoo::llama2_7b();
    EXPECT_EQ(m7.name, "LLaMA2-7B");
    EXPECT_EQ(m7.contextLength, 4096);
    EXPECT_EQ(m7.globalBatchSize, 256);
    // Tok_EMB + 32 x (Attn, FFN) + head.
    EXPECT_EQ(m7.graph.layer(0).kind(), LayerKind::TokenEmbedding);
    EXPECT_EQ(m7.graph.layer(1).name(), "Attn_0");
    EXPECT_EQ(m7.graph.layer(2).name(), "FFN_0");
    EXPECT_NEAR(m7.graph.totals().paramCount / 6.7e9, 1.0, 0.05);
    const auto &attn7 =
        static_cast<const AttentionLayer &>(m7.graph.layer(1));
    EXPECT_EQ(attn7.hidden(), 4096);
    EXPECT_EQ(attn7.numHeads(), 32);
    EXPECT_EQ(attn7.kvHeads(), attn7.numHeads()); // Full KV, no GQA.

    // LLaMA2-13B: 40 layers of h = 5120, 40 heads, ffn 13824.
    ModelDesc m13 = model_zoo::llama2_13b(2048);
    EXPECT_EQ(m13.name, "LLaMA2-13B-ctx2048");
    EXPECT_EQ(m13.contextLength, 2048);
    EXPECT_NEAR(m13.graph.totals().paramCount / 13.0e9, 1.0, 0.05);
    const auto &attn13 =
        static_cast<const AttentionLayer &>(m13.graph.layer(1));
    EXPECT_EQ(attn13.hidden(), 5120);
    EXPECT_EQ(attn13.numHeads(), 40);
    int transformer_layers = 0;
    for (int i = 0; i < m13.graph.numLayers(); ++i)
        transformer_layers +=
            m13.graph.layer(i).kind() == LayerKind::Attention;
    EXPECT_EQ(transformer_layers, 40);

    // The serving prompt length is an architecture knob: shrinking it
    // leaves the parameter count alone but cuts the per-token KV cost
    // the inference model prices off contextLength.
    EXPECT_NEAR(m13.graph.totals().paramCount /
                    model_zoo::llama2_13b().graph.totals().paramCount,
                1.0, 1e-9);
}

TEST(ModelZoo, DlrmGraphShapeMatchesFig5)
{
    // Fig. 5 execution order: EMB, Bottom MLP, interaction, Top MLP;
    // interaction consumes both graph inputs.
    ModelDesc m = model_zoo::dlrmA();
    ASSERT_EQ(m.graph.numLayers(), 4);
    EXPECT_EQ(m.graph.layer(0).kind(), LayerKind::EmbeddingBag);
    EXPECT_EQ(m.graph.layer(1).kind(), LayerKind::Mlp);
    EXPECT_EQ(m.graph.layer(2).kind(), LayerKind::Interaction);
    EXPECT_EQ(m.graph.layer(3).kind(), LayerKind::Mlp);
    EXPECT_EQ(m.graph.deps(2), (std::vector<int>{0, 1}));
}

} // namespace madmax
