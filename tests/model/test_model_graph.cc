#include <gtest/gtest.h>

#include <memory>

#include "model/model_desc.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

std::unique_ptr<Layer>
mlp(const std::string &name, std::vector<long> dims = {4, 8, 2})
{
    return std::make_unique<MlpLayer>(name, LayerClass::BaseDense,
                                      std::move(dims));
}

/** DLRM-shaped graph: EMB and Bot feed Interact, then Top. */
ModelGraph
dlrmShape()
{
    ModelGraph g;
    int emb = g.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 10, 100, 16, 2.0));
    int bot = g.addLayer(mlp("Bot"));
    int inter = g.addLayer(
        std::make_unique<InteractionLayer>("Int", 11, 16, 32), {emb, bot});
    g.addLayer(mlp("Top", {32, 64, 1}), {inter});
    return g;
}

} // namespace

TEST(ModelGraph, AddAndQuery)
{
    ModelGraph g = dlrmShape();
    EXPECT_EQ(g.numLayers(), 4);
    EXPECT_FALSE(g.empty());
    EXPECT_EQ(g.layer(0).name(), "EMB");
    EXPECT_EQ(g.layer(3).name(), "Top");
    EXPECT_TRUE(g.deps(0).empty());
    EXPECT_TRUE(g.deps(1).empty());
    EXPECT_EQ(g.deps(2), (std::vector<int>{0, 1}));
    EXPECT_EQ(g.deps(3), (std::vector<int>{2}));
}

TEST(ModelGraph, Consumers)
{
    ModelGraph g = dlrmShape();
    EXPECT_EQ(g.consumers(0), (std::vector<int>{2}));
    EXPECT_EQ(g.consumers(1), (std::vector<int>{2}));
    EXPECT_EQ(g.consumers(2), (std::vector<int>{3}));
    EXPECT_TRUE(g.consumers(3).empty());
}

TEST(ModelGraph, ForwardOnlyDependencies)
{
    ModelGraph g;
    g.addLayer(mlp("a"));
    // Self- and forward-references are user errors.
    EXPECT_THROW(g.addLayer(mlp("b"), {1}), ConfigError);
    EXPECT_THROW(g.addLayer(mlp("b"), {5}), ConfigError);
    EXPECT_THROW(g.addLayer(mlp("b"), {-1}), ConfigError);
}

TEST(ModelGraph, TotalsAggregateAcrossLayers)
{
    ModelGraph g = dlrmShape();
    ModelTotals t = g.totals();
    double expected_params = 10.0 * 100 * 16 +         // EMB
        (4 * 8 + 8 + 8 * 2 + 2) +                      // Bot
        0.0 +                                          // Interact
        (32 * 64 + 64 + 64 * 1 + 1);                   // Top
    EXPECT_DOUBLE_EQ(t.paramCount, expected_params);
    EXPECT_DOUBLE_EQ(t.lookupBytesPerSample, 10 * 2 * 16 * 4.0);
    EXPECT_GT(t.forwardFlopsPerSample, 0.0);
    EXPECT_DOUBLE_EQ(t.paramsByClass.at(LayerClass::SparseEmbedding),
                     10.0 * 100 * 16);
}

TEST(ModelGraph, LayersOfClass)
{
    ModelGraph g = dlrmShape();
    EXPECT_EQ(g.layersOfClass(LayerClass::SparseEmbedding),
              (std::vector<int>{0}));
    EXPECT_EQ(g.layersOfClass(LayerClass::BaseDense),
              (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(g.layersOfClass(LayerClass::MoE).empty());
    EXPECT_TRUE(g.hasClass(LayerClass::SparseEmbedding));
    EXPECT_FALSE(g.hasClass(LayerClass::Transformer));
}

TEST(ModelGraph, CopyIsDeep)
{
    ModelGraph g = dlrmShape();
    ModelGraph copy = g;
    EXPECT_EQ(copy.numLayers(), g.numLayers());
    EXPECT_EQ(copy.layer(0).name(), "EMB");
    // Addresses differ: layers were cloned, not shared.
    EXPECT_NE(&copy.layer(0), &g.layer(0));

    ModelGraph assigned;
    assigned = g;
    EXPECT_EQ(assigned.numLayers(), 4);
    EXPECT_NE(&assigned.layer(2), &g.layer(2));
}

TEST(ModelGraph, OutOfRangeAccessPanics)
{
    ModelGraph g = dlrmShape();
    EXPECT_THROW(g.layer(4), InternalError);
    EXPECT_THROW(g.layer(-1), InternalError);
    EXPECT_THROW(g.deps(99), InternalError);
}

TEST(ModelDesc, ValidationAndTokenMath)
{
    ModelDesc m;
    m.name = "tiny";
    m.graph = dlrmShape();
    m.globalBatchSize = 1024;
    m.contextLength = 1;
    EXPECT_NO_THROW(m.validate());
    EXPECT_DOUBLE_EQ(m.tokensPerIteration(), 1024.0);

    m.contextLength = 8;
    EXPECT_DOUBLE_EQ(m.tokensPerIteration(), 8192.0);
    EXPECT_DOUBLE_EQ(m.forwardFlopsPerToken(),
                     m.graph.totals().forwardFlopsPerSample / 8.0);

    m.globalBatchSize = 0;
    EXPECT_THROW(m.validate(), ConfigError);

    ModelDesc empty;
    empty.name = "empty";
    EXPECT_THROW(empty.validate(), ConfigError);
}

} // namespace madmax
