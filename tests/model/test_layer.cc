#include <gtest/gtest.h>

#include "model/layer.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(MlpLayer, ParamsAndFlops)
{
    MlpLayer mlp("m", LayerClass::BaseDense, {4, 8, 2});
    // 4x8 + 8 biases + 8x2 + 2 biases = 58.
    EXPECT_DOUBLE_EQ(mlp.paramCount(), 58.0);
    // 2*(4*8 + 8*2) = 96 FLOPs per sample.
    EXPECT_DOUBLE_EQ(mlp.forwardFlopsPerSample(), 96.0);
    // Output: 2 elements.
    EXPECT_DOUBLE_EQ(mlp.outputBytesPerSample(4.0), 8.0);
    // Retained: 8 + 2 elements.
    EXPECT_DOUBLE_EQ(mlp.activationMemoryBytesPerSample(4.0), 40.0);
    // Naive TP reduces at every boundary.
    EXPECT_DOUBLE_EQ(mlp.tpCommBytesPerSample(4.0), 40.0);
}

TEST(MlpLayer, TokensPerSampleScalesPositionWork)
{
    MlpLayer head("head", LayerClass::BaseDense, {4, 2}, 10.0);
    EXPECT_DOUBLE_EQ(head.forwardFlopsPerSample(), 2.0 * 4 * 2 * 10);
    EXPECT_DOUBLE_EQ(head.outputBytesPerSample(2.0), 2 * 10 * 2.0);
    // Params do not scale with positions.
    EXPECT_DOUBLE_EQ(head.paramCount(), 10.0);
}

TEST(MlpLayer, RejectsBadGeometry)
{
    EXPECT_THROW(MlpLayer("m", LayerClass::BaseDense, {4}), ConfigError);
    EXPECT_THROW(MlpLayer("m", LayerClass::BaseDense, {4, 0}),
                 ConfigError);
    EXPECT_THROW(MlpLayer("m", LayerClass::BaseDense, {4, 2}, 0.0),
                 ConfigError);
}

TEST(EmbeddingBagLayer, LookupMath)
{
    EmbeddingBagLayer emb("e", 10, 1000, 64, 4.0);
    EXPECT_DOUBLE_EQ(emb.paramCount(), 10.0 * 1000 * 64);
    // Lookups: 10 tables x 4 rows x 64 elems x 4 B.
    EXPECT_DOUBLE_EQ(emb.lookupBytesPerSample(), 10 * 4 * 64 * 4.0);
    // Pooled output: 10 tables x 64 elems.
    EXPECT_DOUBLE_EQ(emb.outputBytesPerSample(4.0), 10 * 64 * 4.0);
    // Pooling adds.
    EXPECT_DOUBLE_EQ(emb.forwardFlopsPerSample(), 10 * 4 * 64.0);
    EXPECT_EQ(emb.layerClass(), LayerClass::SparseEmbedding);
}

TEST(EmbeddingBagLayer, FractionalPoolingAllowed)
{
    // Sparse optional features can average under one lookup per table.
    EmbeddingBagLayer emb("e", 100, 1000, 64, 0.5);
    EXPECT_DOUBLE_EQ(emb.lookupBytesPerSample(), 100 * 0.5 * 64 * 4.0);
    EXPECT_THROW(EmbeddingBagLayer("e", 100, 1000, 64, 0.0), ConfigError);
}

TEST(TokenEmbeddingLayer, TieFactor)
{
    TokenEmbeddingLayer tied("t", 50000, 128, 2048.0, 1);
    EXPECT_DOUBLE_EQ(tied.paramCount(), 50000.0 * 128);
    TokenEmbeddingLayer untied("t", 50000, 128, 2048.0, 2);
    EXPECT_DOUBLE_EQ(untied.paramCount(), 2.0 * 50000 * 128);
    EXPECT_THROW(TokenEmbeddingLayer("t", 50000, 128, 2048.0, 3),
                 ConfigError);
    // One row per token.
    EXPECT_DOUBLE_EQ(tied.lookupBytesPerSample(), 128 * 2048 * 4.0);
    EXPECT_EQ(tied.layerClass(), LayerClass::DenseEmbedding);
}

TEST(AttentionLayer, ParamAndFlopFormulas)
{
    AttentionLayer attn("a", LayerClass::Transformer, 1024, 16, 512);
    // 4 h^2 projections.
    EXPECT_DOUBLE_EQ(attn.paramCount(), 4.0 * 1024 * 1024);
    // 2*params*ctx + 2*ctx^2*h.
    double expected = 2.0 * attn.paramCount() * 512 +
        2.0 * 512 * 512 * 1024;
    EXPECT_DOUBLE_EQ(attn.forwardFlopsPerSample(), expected);
    EXPECT_DOUBLE_EQ(attn.outputBytesPerSample(2.0), 1024 * 512 * 2.0);
    // Megatron-style TP only reduces the block output.
    EXPECT_DOUBLE_EQ(attn.tpCommBytesPerSample(2.0),
                     attn.outputBytesPerSample(2.0));
}

TEST(AttentionLayer, GqaShrinksKvProjections)
{
    AttentionLayer mha("a", LayerClass::Transformer, 8192, 64, 4096);
    AttentionLayer gqa("a", LayerClass::Transformer, 8192, 64, 4096, 8);
    EXPECT_LT(gqa.paramCount(), mha.paramCount());
    // Q + O projections unchanged: 2h^2; KV shrink by 8x.
    double expected = 2.0 * 8192 * 8192 + 2.0 * 8192 * (8192 / 64 * 8);
    EXPECT_DOUBLE_EQ(gqa.paramCount(), expected);
}

TEST(AttentionLayer, RejectsIndivisibleHeads)
{
    EXPECT_THROW(
        AttentionLayer("a", LayerClass::Transformer, 100, 3, 128),
        ConfigError);
}

TEST(FeedForwardLayer, SwigluUsesThreeMatrices)
{
    FeedForwardLayer gelu("f", LayerClass::Transformer, 1024, 4096, 512);
    FeedForwardLayer swiglu("f", LayerClass::Transformer, 1024, 4096, 512,
                            3);
    EXPECT_DOUBLE_EQ(gelu.paramCount(), 2.0 * 1024 * 4096);
    EXPECT_DOUBLE_EQ(swiglu.paramCount(), 3.0 * 1024 * 4096);
    EXPECT_DOUBLE_EQ(gelu.forwardFlopsPerSample(),
                     2.0 * gelu.paramCount() * 512);
    EXPECT_THROW(
        FeedForwardLayer("f", LayerClass::Transformer, 1024, 4096, 512, 4),
        ConfigError);
}

TEST(MoeFeedForwardLayer, CapacityVsComputeScaling)
{
    // The MoE property (§II-A): capacity scales with all experts,
    // FLOPs only with the active ones.
    FeedForwardLayer dense("f", LayerClass::Transformer, 1024, 4096, 512);
    MoeFeedForwardLayer moe("m", LayerClass::MoE, 1024, 4096, 512, 16, 2);
    EXPECT_DOUBLE_EQ(moe.paramCount(), 16.0 * dense.paramCount());
    EXPECT_DOUBLE_EQ(moe.forwardFlopsPerSample(),
                     2.0 * dense.forwardFlopsPerSample());
    // Each token visits 2 experts in each direction.
    EXPECT_DOUBLE_EQ(moe.routedBytesPerSample(2.0),
                     2.0 * 1024 * 512 * 2.0);
}

TEST(MoeFeedForwardLayer, RejectsBadExpertCounts)
{
    EXPECT_THROW(
        MoeFeedForwardLayer("m", LayerClass::MoE, 8, 8, 1, 4, 5),
        ConfigError);
    EXPECT_THROW(
        MoeFeedForwardLayer("m", LayerClass::MoE, 8, 8, 1, 0, 0),
        ConfigError);
}

TEST(InteractionLayer, PairwiseDotProducts)
{
    InteractionLayer inter("i", 100, 64, 512);
    EXPECT_DOUBLE_EQ(inter.paramCount(), 0.0);
    EXPECT_DOUBLE_EQ(inter.forwardFlopsPerSample(), 100.0 * 100 * 64);
    EXPECT_DOUBLE_EQ(inter.outputBytesPerSample(4.0), 512 * 4.0);
}

TEST(Layer, KindAndClassNames)
{
    EXPECT_EQ(toString(LayerKind::EmbeddingBag), "EMB");
    EXPECT_EQ(toString(LayerKind::Attention), "ATTN");
    EXPECT_EQ(toString(LayerClass::BaseDense), "base-dense");
    EXPECT_EQ(toString(LayerClass::SparseEmbedding), "sparse-embedding");
}

TEST(Layer, CloneIsDeep)
{
    MlpLayer mlp("m", LayerClass::BaseDense, {4, 8, 2});
    auto copy = mlp.clone();
    EXPECT_EQ(copy->name(), "m");
    EXPECT_DOUBLE_EQ(copy->paramCount(), mlp.paramCount());
    EXPECT_EQ(copy->kind(), LayerKind::Mlp);
}

} // namespace madmax
