#include <gtest/gtest.h>

#include <map>

#include "core/layer_processor.hh"
#include "core/overlap_simulator.hh"
#include "core/stream_builder.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

namespace madmax
{

namespace
{

std::vector<TraceEvent>
buildEvents(const ModelDesc &desc, const TaskSpec &task,
            const ParallelPlan &plan, const ClusterSpec &cluster)
{
    LayerProcessor processor(cluster, desc);
    CollectiveModel collectives(cluster);
    StreamBuilder builder(desc, task, plan, cluster, processor,
                          collectives);
    return builder.build();
}

const TraceEvent *
findByName(const std::vector<TraceEvent> &events, const std::string &name)
{
    for (const TraceEvent &ev : events) {
        if (ev.name == name)
            return &ev;
    }
    return nullptr;
}

ParallelPlan
dlrmDeployedPlan()
{
    ParallelPlan p;
    p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    p.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    return p;
}

} // namespace

TEST(StreamBuilder, ForwardAndBackwardEventsPresent)
{
    ModelDesc desc = model_zoo::dlrmA();
    std::vector<TraceEvent> events =
        buildEvents(desc, TaskSpec::preTraining(), dlrmDeployedPlan(),
                    hw_zoo::dlrmTrainingSystem());

    // Compute events for each of the 4 layers in both phases.
    EXPECT_NE(findByName(events, "EMB"), nullptr);
    EXPECT_NE(findByName(events, "Top_MLP"), nullptr);
    EXPECT_NE(findByName(events, "EMB'"), nullptr);
    EXPECT_NE(findByName(events, "Top_MLP'"), nullptr);
    // The embedding All2Alls in both directions.
    EXPECT_NE(findByName(events, "EMB_A2A"), nullptr);
    EXPECT_NE(findByName(events, "EMB_g_A2A"), nullptr);
    // Iteration barrier closes the DAG.
    EXPECT_EQ(events.back().name, "iter_end");
    EXPECT_EQ(events.back().deps.size(), events.size() - 1);
}

TEST(StreamBuilder, InferenceBuildsForwardOnly)
{
    ModelDesc desc = model_zoo::dlrmA();
    std::vector<TraceEvent> events =
        buildEvents(desc, TaskSpec::inference(), dlrmDeployedPlan(),
                    hw_zoo::dlrmTrainingSystem());
    EXPECT_EQ(findByName(events, "EMB'"), nullptr);
    EXPECT_EQ(findByName(events, "EMB_g_A2A"), nullptr);
    for (const TraceEvent &ev : events)
        EXPECT_FALSE(ev.backward && ev.layerIdx >= 0) << ev.name;
}

TEST(StreamBuilder, A2AGatesConsumerCompute)
{
    // Fig. 6: EMB_c_A2A is blocking since the interaction needs its
    // result; the Bot MLP does not and can overlap.
    ModelDesc desc = model_zoo::dlrmA();
    std::vector<TraceEvent> events =
        buildEvents(desc, TaskSpec::preTraining(), dlrmDeployedPlan(),
                    hw_zoo::dlrmTrainingSystem());

    const TraceEvent *a2a = findByName(events, "EMB_A2A");
    const TraceEvent *interact = findByName(events, "Interact");
    const TraceEvent *bot = findByName(events, "Bot_MLP");
    ASSERT_NE(a2a, nullptr);
    ASSERT_NE(interact, nullptr);
    ASSERT_NE(bot, nullptr);

    auto depends_on = [](const TraceEvent *ev, int id) {
        for (int d : ev->deps) {
            if (d == id)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(depends_on(interact, a2a->id));
    EXPECT_FALSE(depends_on(bot, a2a->id));
}

TEST(StreamBuilder, BackwardOrderIsReversed)
{
    ModelDesc desc = model_zoo::dlrmA();
    std::vector<TraceEvent> events =
        buildEvents(desc, TaskSpec::preTraining(), dlrmDeployedPlan(),
                    hw_zoo::dlrmTrainingSystem());
    // Find positions of backward computes.
    std::map<std::string, size_t> pos;
    for (size_t i = 0; i < events.size(); ++i)
        pos[events[i].name] = i;
    EXPECT_LT(pos.at("Top_MLP'"), pos.at("Interact'"));
    EXPECT_LT(pos.at("Interact'"), pos.at("EMB'"));
    // Backward starts only after forward finished.
    EXPECT_LT(pos.at("Top_MLP"), pos.at("Top_MLP'"));
}

TEST(StreamBuilder, NonBlockingGradOpsOnlyGateBarrier)
{
    ModelDesc desc = model_zoo::dlrmA();
    std::vector<TraceEvent> events =
        buildEvents(desc, TaskSpec::preTraining(), dlrmDeployedPlan(),
                    hw_zoo::dlrmTrainingSystem());
    // The DDP weight-gradient AR is non-blocking; nothing except the
    // barrier may depend on it.
    const TraceEvent *ar = findByName(events, "Top_MLP_g_AR");
    ASSERT_NE(ar, nullptr);
    EXPECT_FALSE(ar->blocking);
    for (const TraceEvent &ev : events) {
        if (ev.name == "iter_end")
            continue;
        for (int d : ev.deps)
            EXPECT_NE(d, ar->id) << ev.name;
    }
}

TEST(StreamBuilder, FsdpPrefetchMovesGatherEarlier)
{
    // Fig. 9: with prefetching, the AllGather of the next layer
    // overlaps the current layer's compute, raising overlap.
    ModelDesc desc = model_zoo::llama65b();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    ParallelPlan off = ParallelPlan::fsdpBaseline();
    off.fsdpPrefetch = false;
    ParallelPlan on = ParallelPlan::fsdpBaseline();
    on.fsdpPrefetch = true;

    OverlapSimulator sim;
    Timeline t_off =
        sim.schedule(buildEvents(desc, TaskSpec::preTraining(), off,
                                 cluster));
    Timeline t_on =
        sim.schedule(buildEvents(desc, TaskSpec::preTraining(), on,
                                 cluster));
    EXPECT_LT(t_on.makespan, t_off.makespan);
    EXPECT_GT(t_on.overlapFraction(), t_off.overlapFraction());
    // Total communication volume is unchanged.
    EXPECT_NEAR(t_on.commBusy, t_off.commBusy, 1e-9);
}

TEST(StreamBuilder, EventIdsAreSequentialAndDepsBackward)
{
    ModelDesc desc = model_zoo::dlrmATransformer();
    std::vector<TraceEvent> events =
        buildEvents(desc, TaskSpec::preTraining(),
                    ParallelPlan::fsdpBaseline(),
                    hw_zoo::dlrmTrainingSystem());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].id, static_cast<int>(i));
        for (int d : events[i].deps)
            EXPECT_LT(d, events[i].id);
    }
}

TEST(StreamBuilder, MoeDispatchPrecedesCombine)
{
    ModelDesc desc = model_zoo::dlrmAMoe();
    ParallelPlan plan = dlrmDeployedPlan();
    plan.set(LayerClass::MoE, HierStrategy{Strategy::MP});
    std::vector<TraceEvent> events =
        buildEvents(desc, TaskSpec::preTraining(), plan,
                    hw_zoo::dlrmTrainingSystem());

    const TraceEvent *disp = findByName(events, "MoE_Top_disp_A2A");
    const TraceEvent *comb = findByName(events, "MoE_Top_comb_A2A");
    const TraceEvent *moe = findByName(events, "MoE_Top");
    ASSERT_NE(disp, nullptr);
    ASSERT_NE(comb, nullptr);
    ASSERT_NE(moe, nullptr);
    // dispatch -> compute -> combine chain.
    EXPECT_LT(disp->id, moe->id);
    EXPECT_LT(moe->id, comb->id);
    bool moe_waits_disp = false;
    for (int d : moe->deps)
        moe_waits_disp |= d == disp->id;
    EXPECT_TRUE(moe_waits_disp);
    bool comb_waits_moe = false;
    for (int d : comb->deps)
        comb_waits_moe |= d == moe->id;
    EXPECT_TRUE(comb_waits_moe);
}

TEST(StreamBuilder, ScheduledStreamsRespectStreamExclusivity)
{
    // No two events of the same stream may overlap in time
    // (blocking comm and compute are single-stream; background ops
    // are exempt).
    ModelDesc desc = model_zoo::dlrmATransformer();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    LayerProcessor processor(cluster, desc);
    CollectiveModel collectives(cluster);
    StreamBuilder builder(desc, TaskSpec::preTraining(),
                          ParallelPlan::fsdpBaseline(), cluster,
                          processor, collectives);
    OverlapSimulator sim;
    Timeline tl = sim.schedule(builder.build());

    std::vector<const ScheduledEvent *> compute, blocking_comm;
    for (const ScheduledEvent &se : tl.events) {
        if (se.event.duration <= 0.0)
            continue;
        if (se.event.stream == StreamKind::Compute)
            compute.push_back(&se);
        else if (se.event.blocking)
            blocking_comm.push_back(&se);
    }
    auto check_disjoint = [](const std::vector<const ScheduledEvent *> &v) {
        for (size_t i = 1; i < v.size(); ++i)
            EXPECT_GE(v[i]->start, v[i - 1]->finish - 1e-12)
                << v[i]->event.name;
    };
    check_disjoint(compute);
    check_disjoint(blocking_comm);
}

} // namespace madmax
