/**
 * @file
 * InferenceModel tests: the serving-workload contract (validation,
 * phase-task derivation, KV bytes per request), the continuous-
 * batching composition laws (colocated rates compose harmonically,
 * disaggregated pipelines run at the bottleneck stage plus the KV
 * shipment), the colocated shared-footprint OOM check, and the
 * KV-capacity concurrency ceiling.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/inference_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/** A small serving scenario that evaluates in milliseconds: the 7B
 *  model at a short prompt on one A100-80GB node. */
ModelDesc
smallModel()
{
    return model_zoo::llama2_7b(512);
}

ClusterSpec
pool(const char *name, int nodes)
{
    ClusterSpec c = hw_zoo::llmTrainingSystem().withNumNodes(nodes);
    c.name = name;
    return c;
}

ParallelPlan
ddpPlan()
{
    ParallelPlan plan;
    plan.set(LayerClass::DenseEmbedding, HierStrategy{Strategy::DDP});
    plan.set(LayerClass::Transformer, HierStrategy{Strategy::DDP});
    return plan;
}

} // namespace

TEST(InferenceWorkload, ValidatesAgainstTheModel)
{
    ModelDesc desc = smallModel();
    InferenceWorkload w;
    EXPECT_NO_THROW(w.validate(desc));
    EXPECT_EQ(w.effectivePrompt(desc), 512);

    InferenceWorkload explicit_prompt;
    explicit_prompt.promptTokens = 512;
    EXPECT_NO_THROW(explicit_prompt.validate(desc));

    InferenceWorkload mismatched;
    mismatched.promptTokens = 2048; // Model was built at 512.
    EXPECT_THROW(mismatched.validate(desc), ConfigError);

    InferenceWorkload negative;
    negative.promptTokens = -1;
    EXPECT_THROW(negative.validate(desc), ConfigError);

    InferenceWorkload no_decode;
    no_decode.generateTokens = 0;
    EXPECT_THROW(no_decode.validate(desc), ConfigError);

    InferenceWorkload bad_kv;
    bad_kv.kvBytesPerElement = -2.0;
    EXPECT_THROW(bad_kv.validate(desc), ConfigError);
}

TEST(InferenceModelTasks, PhaseTasksCarryTheKvGeometry)
{
    ModelDesc desc = smallModel();
    InferenceWorkload w;
    w.generateTokens = 128;

    TaskSpec prefill = InferenceModel::prefillTask(desc, w);
    EXPECT_EQ(prefill.phase, InferencePhase::Prefill);
    EXPECT_TRUE(prefill.usesKvCache());
    EXPECT_EQ(prefill.kvCapacityTokens, 512);

    // Decode prices the steady-state step (KV at prompt + gen/2) but
    // budgets capacity for the full sequence (prompt + gen).
    TaskSpec decode = InferenceModel::decodeTask(desc, w);
    EXPECT_EQ(decode.phase, InferencePhase::Decode);
    EXPECT_EQ(decode.decodeKvLength, 512 + 64);
    EXPECT_EQ(decode.kvCapacityTokens, 512 + 128);

    // The phase tasks must not alias the batch task (or each other)
    // in the engine's memoization key.
    EXPECT_NE(prefill.toString(), TaskSpec::inference().toString());
    EXPECT_NE(prefill.toString(), decode.toString());
}

TEST(InferenceModelTasks, KvBytesPerRequestMatchesTheArchitecture)
{
    ModelDesc desc = smallModel();
    // LLaMA2-7B: 32 attention layers, h=4096, full KV -> 2 (K and V)
    // x 4096 x 2 B/elem x 32 layers = 512 KiB of cache per token.
    const double per_token =
        InferenceModel::kvBytesForTokens(desc, 1, 2.0);
    EXPECT_DOUBLE_EQ(per_token, 2.0 * 4096 * 2.0 * 32);
    EXPECT_DOUBLE_EQ(InferenceModel::kvBytesForTokens(desc, 512, 2.0),
                     512 * per_token);
    // An fp8 cache halves it.
    EXPECT_DOUBLE_EQ(InferenceModel::kvBytesForTokens(desc, 1, 1.0),
                     per_token / 2.0);
}

TEST(InferenceModel, ColocatedRatesComposeHarmonically)
{
    ModelDesc desc = smallModel();
    InferenceWorkload w;
    w.generateTokens = 64;
    ClusterSpec cluster = pool("a100-pool", 2);

    InferenceModel model;
    InferenceReport r = model.evaluate(desc, w, cluster, ddpPlan(),
                                       cluster, ddpPlan());
    ASSERT_TRUE(r.valid);
    EXPECT_FALSE(r.disaggregated);
    EXPECT_DOUBLE_EQ(r.kvTransferRate, 0.0);

    // One pool alternates phases: 1/rate = 1/prefill + 1/decode.
    EXPECT_NEAR(1.0 / r.requestRate,
                1.0 / r.prefillRate + 1.0 / r.decodeRate, 1e-12);
    EXPECT_LT(r.requestRate, r.prefillRate);
    EXPECT_LT(r.requestRate, r.decodeRate);

    EXPECT_DOUBLE_EQ(r.tokensPerSecond, r.requestRate * 64);
    EXPECT_DOUBLE_EQ(r.ttftSeconds, r.prefill.iterationTime);
    EXPECT_DOUBLE_EQ(r.tpotSeconds, r.decode.iterationTime);
    EXPECT_DOUBLE_EQ(r.e2eSeconds, r.ttftSeconds + 64 * r.tpotSeconds);

    // A decode step advances the whole batch by one token; it must be
    // far cheaper than the full prompt pass.
    EXPECT_LT(r.decode.iterationTime, r.prefill.iterationTime);

    // The decode footprint carries the KV cache; prefill's stops at
    // the prompt, so it is no larger.
    EXPECT_GT(r.decode.memory.kvCacheBytes, 0.0);
    EXPECT_LE(r.prefill.memory.kvCacheBytes,
              r.decode.memory.kvCacheBytes);

    // The batch is resident, so the concurrency ceiling at least
    // admits it.
    EXPECT_GE(r.maxConcurrentSequences,
              static_cast<double>(desc.globalBatchSize));
}

TEST(InferenceModel, DisaggregatedPipelineRunsAtTheBottleneck)
{
    ModelDesc desc = smallModel();
    InferenceWorkload w;
    w.generateTokens = 64;
    ClusterSpec prefill_pool = pool("prefill-pool", 2);
    ClusterSpec decode_pool = pool("decode-pool", 2);

    InferenceModel model;
    InferenceReport r =
        model.evaluate(desc, w, prefill_pool, ddpPlan(), decode_pool,
                       ddpPlan(), "two-pool-deployment");
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(r.disaggregated);
    EXPECT_EQ(r.clusterName, "two-pool-deployment");

    // Pipeline law: the sustained rate is the slowest stage.
    EXPECT_GT(r.kvTransferRate, 0.0);
    EXPECT_DOUBLE_EQ(
        r.requestRate,
        std::min({r.prefillRate, r.decodeRate, r.kvTransferRate}));

    // TTFT pays the KV shipment on top of the prompt pass.
    EXPECT_GT(r.ttftSeconds, r.prefill.iterationTime);
    EXPECT_GT(r.kvBytesPerRequest, 0.0);
}

TEST(InferenceModel, ColocatedSharedFootprintCanOomWhenPhasesFitAlone)
{
    // At context 1024 with batch-256 sequences resident, the 13B
    // model's KV cache next to the prefill working set overflows a
    // single 8-GPU A100-80GB node, even though each phase fits on its
    // own island of the same shape.
    ModelDesc desc = model_zoo::llama2_13b(1024);
    InferenceWorkload w;
    ClusterSpec one_node = pool("one-node", 1);

    InferenceModel model;
    InferenceReport colocated = model.evaluate(
        desc, w, one_node, ddpPlan(), one_node, ddpPlan());
    ClusterSpec other = one_node;
    other.name = "other-node";
    InferenceReport split = model.evaluate(desc, w, one_node, ddpPlan(),
                                           other, ddpPlan());
    ASSERT_TRUE(split.valid);
    EXPECT_TRUE(split.prefill.valid);
    EXPECT_TRUE(split.decode.valid);
    EXPECT_FALSE(colocated.valid) << "colocated pools must fit the "
                                     "wider phase next to the cache";
    // The invalid report renders a diagnosis instead of rates.
    EXPECT_NE(colocated.summary().find("INVALID"), std::string::npos);
}

TEST(InferenceModel, JsonGatesRateKeysOnValidity)
{
    ModelDesc desc = smallModel();
    InferenceWorkload w;
    ClusterSpec cluster = pool("a100-pool", 2);
    InferenceModel model;
    InferenceReport r = model.evaluate(desc, w, cluster, ddpPlan(),
                                       cluster, ddpPlan());
    ASSERT_TRUE(r.valid);
    JsonValue j = toJson(r);
    EXPECT_TRUE(j.at("valid").asBool());
    EXPECT_FALSE(j.at("disaggregated").asBool());
    EXPECT_GT(j.at("tokens_per_sec").asDouble(), 0.0);
    EXPECT_FALSE(j.has("kv_transfer_rate_per_sec")); // Colocated.
    EXPECT_TRUE(j.has("prefill"));
    EXPECT_TRUE(j.has("decode"));
}

} // namespace madmax
