#include <gtest/gtest.h>

#include <set>

#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(StrategyExplorer, CandidateSets)
{
    auto dense = StrategyExplorer::candidates(LayerClass::BaseDense);
    EXPECT_EQ(dense.size(), 8u);
    // Contains the paper's key strategies.
    auto contains = [&](HierStrategy hs) {
        for (const HierStrategy &c : dense) {
            if (c == hs)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(contains(HierStrategy{Strategy::FSDP}));
    EXPECT_TRUE(contains(HierStrategy{Strategy::DDP}));
    EXPECT_TRUE(contains(HierStrategy{Strategy::TP, Strategy::DDP}));
    EXPECT_TRUE(contains(HierStrategy{Strategy::DDP, Strategy::TP}));

    auto emb = StrategyExplorer::candidates(LayerClass::SparseEmbedding);
    for (const HierStrategy &hs : emb)
        EXPECT_EQ(hs.intra, Strategy::MP); // Sharding variants only.

    auto moe = StrategyExplorer::candidates(LayerClass::MoE);
    EXPECT_GE(moe.size(), 4u);
}

TEST(StrategyExplorer, ExploreCoversCartesianProduct)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    // DLRM-A has SparseEmbedding (2 candidates) x BaseDense (8).
    auto results = explorer.explore(model_zoo::dlrmA(),
                                    TaskSpec::preTraining()).results;
    EXPECT_EQ(results.size(), 16u);

    // All plans distinct.
    std::set<std::string> names;
    for (const auto &r : results)
        names.insert(r.plan.toString());
    EXPECT_EQ(names.size(), results.size());
}

TEST(StrategyExplorer, ResultsSortedValidFirstByThroughput)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    auto results = explorer.explore(model_zoo::dlrmA(),
                                    TaskSpec::preTraining()).results;
    bool seen_invalid = false;
    double prev = 1e300;
    for (const auto &r : results) {
        if (!r.report.valid) {
            seen_invalid = true;
            continue;
        }
        EXPECT_FALSE(seen_invalid) << "valid after invalid";
        EXPECT_LE(r.report.throughput(), prev + 1e-6);
        prev = r.report.throughput();
    }
    // DLRM-A pre-training has at least one OOM plan (DDP dense).
    EXPECT_TRUE(seen_invalid);
}

TEST(StrategyExplorer, BestBeatsBaseline)
{
    // The headline claim: tuned plans outperform the FSDP baseline.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    ExplorationResult best =
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining());
    PerfReport baseline =
        explorer.baseline(model_zoo::dlrmA(), TaskSpec::preTraining());
    ASSERT_TRUE(best.report.valid);
    ASSERT_TRUE(baseline.valid);
    EXPECT_GE(best.report.throughput(), baseline.throughput());
}

TEST(StrategyExplorer, DlrmOptimalShardsIntraReplicatesInter)
{
    // Insight 1 / Fig. 11: the winning dense-layer strategy shards
    // within the node (TP or FSDP over NVLink) and replicates across
    // nodes (DDP over RoCE) — (TP, DDP) in the paper; our cost model
    // ranks (FSDP, DDP) within 1% of it.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    ExplorationResult best =
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining());
    HierStrategy dense = best.plan.strategyFor(LayerClass::BaseDense);
    EXPECT_TRUE(dense.intra == Strategy::TP ||
                dense.intra == Strategy::FSDP)
        << dense.toString();
    EXPECT_EQ(dense.inter, Strategy::DDP) << dense.toString();
}

TEST(StrategyExplorer, KeepInvalidToggle)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    ExplorerOptions keep;
    keep.keepInvalid = true;
    ExplorerOptions drop;
    drop.keepInvalid = false;
    auto with = explorer.explore(model_zoo::dlrmA(),
                                 TaskSpec::preTraining(), keep).results;
    auto without = explorer.explore(model_zoo::dlrmA(),
                                    TaskSpec::preTraining(), drop)
                       .results;
    EXPECT_GT(with.size(), without.size());
    for (const auto &r : without)
        EXPECT_TRUE(r.report.valid);
}

TEST(StrategyExplorer, IgnoreMemoryUnlocksFasterPlans)
{
    // Fig. 10's orange bars: unconstrained exploration can only be
    // at least as fast as the constrained optimum.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    ExplorerOptions unconstrained;
    unconstrained.ignoreMemory = true;
    double best_c = explorer.best(model_zoo::dlrmA(),
                                  TaskSpec::preTraining())
                        .report.throughput();
    double best_u = explorer.best(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), unconstrained)
                        .report.throughput();
    EXPECT_GE(best_u, best_c - 1e-6);
}

TEST(StrategyExplorer, PrefetchVariantsExplored)
{
    PerfModel model(hw_zoo::llmTrainingSystem());
    StrategyExplorer explorer(model);
    ExplorerOptions opts;
    opts.explorePrefetch = true;
    auto with = explorer.explore(model_zoo::llama65b(),
                                 TaskSpec::preTraining(), opts).results;
    auto without = explorer.explore(model_zoo::llama65b(),
                                    TaskSpec::preTraining())
                       .results;
    EXPECT_GT(with.size(), without.size());
    bool any_prefetch = false;
    for (const auto &r : with)
        any_prefetch |= r.plan.fsdpPrefetch;
    EXPECT_TRUE(any_prefetch);
}

TEST(StrategyExplorer, TaskChangesOptimum)
{
    // Insight 5: inference admits strategies that pre-training
    // cannot use (e.g. DDP), so the explored space differs in
    // validity.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    auto pre = explorer.explore(model_zoo::dlrmA(),
                                TaskSpec::preTraining()).results;
    auto inf = explorer.explore(model_zoo::dlrmA(),
                                TaskSpec::inference()).results;
    int pre_valid = 0, inf_valid = 0;
    for (const auto &r : pre)
        pre_valid += r.report.valid;
    for (const auto &r : inf)
        inf_valid += r.report.valid;
    EXPECT_GT(inf_valid, pre_valid);
}

TEST(StrategyExplorer, ImpossibleMemoryIsFatal)
{
    // A cluster whose devices cannot hold even the sharded model.
    ClusterSpec tiny = hw_zoo::dlrmTrainingSystem();
    tiny.device.hbmCapacity = 1024.0 * 1024.0; // 1 MiB.
    PerfModel model(tiny);
    StrategyExplorer explorer(model);
    EXPECT_THROW(
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining()),
        ConfigError);
}

} // namespace madmax
