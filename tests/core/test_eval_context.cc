/**
 * @file
 * EvalContext tests: the shared hot-path context must be a pure
 * optimization — every report it produces is bit-identical to a
 * fresh PerfModel::evaluate, across context reuse, lazily-built
 * strategy tables, mixed-context engine batches, and both settings
 * of keepTimeline (names are only materialized when timelines are
 * retained).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/eval_context.hh"
#include "engine/eval_engine.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

namespace madmax
{

namespace
{

/** Exact equality on every PerfReport field, timeline included. */
void
expectBitIdentical(const PerfReport &a, const PerfReport &b)
{
    EXPECT_EQ(a.modelName, b.modelName);
    EXPECT_EQ(a.clusterName, b.clusterName);
    EXPECT_EQ(a.taskName, b.taskName);
    EXPECT_EQ(a.plan.toString(), b.plan.toString());
    EXPECT_EQ(a.plan.fsdpPrefetch, b.plan.fsdpPrefetch);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.memory.paramBytes, b.memory.paramBytes);
    EXPECT_EQ(a.memory.gradBytes, b.memory.gradBytes);
    EXPECT_EQ(a.memory.optimizerBytes, b.memory.optimizerBytes);
    EXPECT_EQ(a.memory.activationBytes, b.memory.activationBytes);
    EXPECT_EQ(a.memory.transientBytes, b.memory.transientBytes);
    EXPECT_EQ(a.memory.usableCapacity, b.memory.usableCapacity);
    EXPECT_EQ(a.iterationTime, b.iterationTime);
    EXPECT_EQ(a.serializedTime, b.serializedTime);
    EXPECT_EQ(a.computeTime, b.computeTime);
    EXPECT_EQ(a.commTime, b.commTime);
    EXPECT_EQ(a.exposedCommTime, b.exposedCommTime);
    EXPECT_EQ(a.globalBatchSize, b.globalBatchSize);
    EXPECT_EQ(a.contextLength, b.contextLength);
    EXPECT_EQ(a.serializedBreakdown, b.serializedBreakdown);
    EXPECT_EQ(a.exposedBreakdown, b.exposedBreakdown);

    ASSERT_EQ(a.timeline.events.size(), b.timeline.events.size());
    for (size_t i = 0; i < a.timeline.events.size(); ++i) {
        const ScheduledEvent &x = a.timeline.events[i];
        const ScheduledEvent &y = b.timeline.events[i];
        EXPECT_EQ(x.event.id, y.event.id);
        EXPECT_EQ(x.event.name, y.event.name) << "event " << i;
        EXPECT_EQ(x.event.stream, y.event.stream);
        EXPECT_EQ(x.event.category, y.event.category);
        EXPECT_EQ(x.event.duration, y.event.duration);
        EXPECT_EQ(x.event.deps, y.event.deps);
        EXPECT_EQ(x.event.blocking, y.event.blocking);
        EXPECT_EQ(x.event.layerIdx, y.event.layerIdx);
        EXPECT_EQ(x.event.backward, y.event.backward);
        EXPECT_EQ(x.start, y.start);
        EXPECT_EQ(x.finish, y.finish);
    }
    EXPECT_EQ(a.timeline.makespan, b.timeline.makespan);
    EXPECT_EQ(a.timeline.computeBusy, b.timeline.computeBusy);
    EXPECT_EQ(a.timeline.commBusy, b.timeline.commBusy);
    EXPECT_EQ(a.timeline.exposedComm, b.timeline.exposedComm);
}

std::vector<ParallelPlan>
samplePlans()
{
    using S = Strategy;
    std::vector<ParallelPlan> plans;

    ParallelPlan baseline = ParallelPlan::fsdpBaseline();
    plans.push_back(baseline);

    ParallelPlan prefetch = baseline;
    prefetch.fsdpPrefetch = true;
    plans.push_back(prefetch);

    ParallelPlan tp_ddp;
    tp_ddp.set(LayerClass::Transformer, HierStrategy{S::TP, S::DDP});
    tp_ddp.set(LayerClass::BaseDense, HierStrategy{S::TP, S::DDP});
    tp_ddp.set(LayerClass::DenseEmbedding, HierStrategy{S::DDP});
    plans.push_back(tp_ddp);

    ParallelPlan mixed;
    mixed.set(LayerClass::Transformer, HierStrategy{S::FSDP, S::DDP});
    mixed.set(LayerClass::DenseEmbedding, HierStrategy{S::TP});
    mixed.fsdpPrefetch = true;
    plans.push_back(mixed);
    return plans;
}

} // namespace

TEST(EvalContext, ReusedContextMatchesFreshEvaluateBitwise)
{
    ModelDesc desc = model_zoo::gpt3();
    PerfModel perf(hw_zoo::llmTrainingSystem());
    TaskSpec task = TaskSpec::preTraining();

    EvalContext context(perf, desc, task);
    for (const ParallelPlan &plan : samplePlans()) {
        PerfReport fresh = perf.evaluate(desc, task, plan);
        PerfReport reused = context.evaluate(plan);
        expectBitIdentical(reused, fresh);
    }
}

TEST(EvalContext, VerdictMatchesPerfModelVerdict)
{
    ModelDesc desc = model_zoo::dlrmA();
    PerfModel perf(hw_zoo::dlrmTrainingSystem());
    TaskSpec task = TaskSpec::preTraining();

    EvalContext context(perf, desc, task);
    for (const ParallelPlan &plan : samplePlans()) {
        expectBitIdentical(context.verdict(plan),
                           perf.verdict(desc, task, plan));
    }
}

TEST(EvalContext, InferenceContextBuildsForwardOnly)
{
    ModelDesc desc = model_zoo::gpt3();
    PerfModel perf(hw_zoo::llmTrainingSystem());
    TaskSpec task = TaskSpec::inference();

    EvalContext context(perf, desc, task);
    for (int i = 0; i < desc.graph.numLayers(); ++i)
        EXPECT_EQ(context.layerCosts(i).bwdTime, 0.0);

    PerfReport report = context.evaluate(ParallelPlan::fsdpBaseline());
    expectBitIdentical(
        report,
        perf.evaluate(desc, task, ParallelPlan::fsdpBaseline()));
    for (const ScheduledEvent &se : report.timeline.events) {
        if (se.event.layerIdx >= 0) {
            EXPECT_FALSE(se.event.backward);
        }
    }
}

TEST(EvalContext, PlannedOpsAreStableAndSharedAcrossCalls)
{
    ModelDesc desc = model_zoo::gpt3();
    PerfModel perf(hw_zoo::llmTrainingSystem());
    TaskSpec task = TaskSpec::preTraining();
    EvalContext context(perf, desc, task);

    HierStrategy fsdp{Strategy::FSDP};
    const std::vector<ResolvedCommOp> &first =
        context.plannedOps(0, fsdp);
    const std::vector<ResolvedCommOp> &second =
        context.plannedOps(0, fsdp);
    EXPECT_EQ(&first, &second)
        << "per-strategy tables must be built once and shared";

    // FSDP on a trainable layer gathers forward + backward and
    // reduce-scatters gradients.
    ASSERT_FALSE(first.empty());
    for (const ResolvedCommOp &op : first)
        EXPECT_GT(op.duration, 0.0);

    size_t memoized = context.collectiveTableSize();
    EXPECT_GT(memoized, 0u);
    context.plannedOps(1, fsdp);
    EXPECT_EQ(context.collectiveTableSize(), memoized)
        << "repeat lookups must not grow the memo table";
}

TEST(EvalContext, KeepTimelineControlsNameMaterialization)
{
    ModelDesc desc = model_zoo::dlrmA();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    TaskSpec task = TaskSpec::preTraining();

    PerfModel keep(cluster);
    EvalContext keepCtx(keep, desc, task);
    PerfReport with = keepCtx.evaluate(ParallelPlan::fsdpBaseline());
    ASSERT_FALSE(with.timeline.events.empty());
    // Materialized names: layer labels on compute events, planner
    // tags on collectives, and the closing barrier.
    for (const ScheduledEvent &se : with.timeline.events)
        EXPECT_FALSE(se.event.name.empty());
    EXPECT_EQ(with.timeline.events.back().event.name, "iter_end");
    bool saw_backward_label = false;
    for (const ScheduledEvent &se : with.timeline.events) {
        if (se.event.backward && se.event.stream == StreamKind::Compute &&
            se.event.layerIdx >= 0) {
            saw_backward_label = true;
            EXPECT_EQ(se.event.name.back(), '\'');
        }
    }
    EXPECT_TRUE(saw_backward_label);

    PerfModelOptions opts;
    opts.keepTimeline = false;
    PerfModel drop(cluster, opts);
    EvalContext dropCtx(drop, desc, task);
    PerfReport without = dropCtx.evaluate(ParallelPlan::fsdpBaseline());
    EXPECT_TRUE(without.timeline.events.empty());
    // Timing fields are unaffected by timeline retention.
    EXPECT_EQ(without.iterationTime, with.iterationTime);
    EXPECT_EQ(without.exposedCommTime, with.exposedCommTime);
}

TEST(EvalContext, MixedContextEngineBatchMatchesDirectEvaluation)
{
    ModelDesc gpt = model_zoo::gpt3();
    ModelDesc dlrm = model_zoo::dlrmA();
    PerfModel llmPerf(hw_zoo::llmTrainingSystem());
    PerfModel recPerf(hw_zoo::dlrmTrainingSystem());
    TaskSpec pretrain = TaskSpec::preTraining();
    TaskSpec inference = TaskSpec::inference();

    // Interleave three (model, desc, task) groups in one batch.
    std::vector<PlanRequest> requests;
    for (const ParallelPlan &plan : samplePlans()) {
        requests.push_back(PlanRequest{&llmPerf, &gpt, &pretrain, plan});
        requests.push_back(PlanRequest{&recPerf, &dlrm, &pretrain, plan});
        requests.push_back(PlanRequest{&llmPerf, &gpt, &inference, plan});
    }

    EvalEngineOptions eo;
    eo.memoize = false; // Every request evaluates through its context.
    eo.jobs = 4;        // Concurrent lazy strategy-table builds.
    EvalEngine engine(eo);
    EvalStats stats;
    std::vector<PerfReport> reports = engine.evaluateAll(requests, &stats);

    ASSERT_EQ(reports.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        const PlanRequest &req = requests[i];
        PerfReport direct =
            req.model->evaluate(*req.desc, *req.task, req.plan);
        expectBitIdentical(reports[i], direct);
    }
}

} // namespace madmax
