/**
 * @file
 * Figure-level validation under the flat default collective model:
 * Fig. 7 (DLRM-A serialized/overlapped execution, 8- vs 128-GPU
 * ZionEX) and Fig. 8 (ViT MFU across scales on AWS p4d with FSDP).
 * These pin the bench recipes (bench/fig07_dlrm_validation.cc,
 * bench/fig08_vit_validation.cc) as tests so the topology subsystem —
 * or any later model change — cannot silently shift the paper-facing
 * numbers while the flat model is selected.
 */

#include <gtest/gtest.h>

#include "collective/collective.hh"
#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "parallel/sharding.hh"

namespace madmax
{

namespace
{

/** Fig. 7 / Fig. 11's throughput-optimal DLRM mapping. */
ParallelPlan
dlrmPlan()
{
    ParallelPlan p;
    p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    p.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    return p;
}

double
breakdown(const PerfReport &r, EventCategory cat)
{
    auto it = r.serializedBreakdown.find(cat);
    return it == r.serializedBreakdown.end() ? 0.0 : it->second;
}

} // namespace

// Fig. 7, right half: the 128-GPU ZionEX run against the published
// measurements (67.40 ms serialized, 82.37% communication exposed,
// 1.2 MQPS). The default cluster carries no TopologySpec, so this
// exercises — and pins — the flat collective model.
TEST(FigValidation, Fig7_Dlrm128GpuMatchesMeasurement)
{
    const ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    ASSERT_EQ(cluster.topology, nullptr)
        << "Fig. 7 validation must run the flat default";
    PerfModel model(cluster);
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), dlrmPlan());
    ASSERT_TRUE(r.valid);
    EXPECT_NEAR(r.serializedTime * 1e3, 67.40, 67.40 * 0.15);
    EXPECT_NEAR(r.exposedFraction(), 0.8237, 0.10);
    EXPECT_NEAR(r.throughput() / 1e6, 1.2, 1.2 * 0.10);
}

// Fig. 7's network-scaling effect: the single-node system rides
// NVLink for the All2All while the 16-node system is bound by the
// RoCE fabric ("Effective All2All BW = slowest interconnect", §IV-C).
// DLRM-A itself cannot fit on one node (792.7B embedding params), so
// the fabric contrast is pinned at the collective-model layer, plus
// the All2All share of the feasible 128-GPU run.
TEST(FigValidation, Fig7_NetworkScalingAcrossNodeCounts)
{
    const ClusterSpec one_node =
        hw_zoo::dlrmTrainingSystem().withNumNodes(1);
    const ClusterSpec full = hw_zoo::dlrmTrainingSystem();
    const CollectiveModel nvlink(one_node);
    const CollectiveModel roce(full);

    const double bytes = 1e9;
    const double bw8 = nvlink.effectiveBandwidth(
        Collective::All2All, CommScope::Global, bytes);
    const double bw128 = roce.effectiveBandwidth(
        Collective::All2All, CommScope::Global, bytes);
    // Single-node: ~NVLink effective rate. 16-node: pinned near the
    // RoCE per-device rate — more than an order of magnitude apart.
    EXPECT_NEAR(bw8, one_node.effIntraBandwidth(),
                one_node.effIntraBandwidth() * 0.15);
    EXPECT_NEAR(bw128, full.effInterBandwidth(),
                full.effInterBandwidth() * 0.15);
    EXPECT_GT(bw8, 10.0 * bw128);

    // On the feasible 128-GPU run, the exposed fabric shows up as a
    // large serialized All2All share, partially hidden by overlap.
    PerfModel model(full);
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), dlrmPlan());
    ASSERT_TRUE(r.valid);
    EXPECT_GT(breakdown(r, EventCategory::All2All),
              0.15 * r.serializedTime);
    EXPECT_LT(r.iterationTime, r.serializedTime);
    EXPECT_GT(r.exposedFraction(), 0.5);
}

// Fig. 8: ViT FSDP training on AWS p4d. MFU stays within the modeled
// SM ceiling everywhere and degrades with scale-out (FSDP gathers ride
// the 50 Gbps-per-GPU EFA), matching the figure's spread.
TEST(FigValidation, Fig8_VitMfuWithinCeilingAndFallsWithScale)
{
    using model_zoo::VitSize;
    const double sm_ceiling = 0.72;
    for (VitSize size : {VitSize::L, VitSize::H}) {
        double prev_mfu = 1.0;
        for (int gpus : {32, 2048}) {
            ModelDesc model = model_zoo::vit(size, 4096);
            ClusterSpec cluster = hw_zoo::awsP4d(gpus / 8);
            ASSERT_EQ(cluster.topology, nullptr);

            PerfModelOptions opts;
            opts.smModel = SmUtilizationModel(sm_ceiling, 6e10);
            opts.keepTimeline = false;
            PerfModel madmax(cluster, opts);
            PerfReport r =
                madmax.evaluate(model, TaskSpec::preTraining(),
                                ParallelPlan::fsdpBaseline());
            ASSERT_TRUE(r.valid)
                << model.name << " on " << gpus << " GPUs";

            const double model_flops = 3.0 *
                model.graph.totals().forwardFlopsPerSample * 4096.0;
            const double mfu = model_flops /
                (r.iterationTime *
                 cluster.aggregatePeakFlops(model.computeDtype));
            EXPECT_GT(mfu, 0.0) << model.name << " @" << gpus;
            EXPECT_LT(mfu, sm_ceiling) << model.name << " @" << gpus;
            // Scaling out shrinks the per-device batch and exposes
            // the EFA-bound gathers: MFU must fall.
            EXPECT_LT(mfu, prev_mfu) << model.name << " @" << gpus;
            prev_mfu = mfu;
        }
    }
}

} // namespace madmax
