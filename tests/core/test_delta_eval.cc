/**
 * @file
 * Differential pin for incremental (delta) re-evaluation: over long
 * randomized single-class mutation walks, EvalContext::evaluateDelta
 * must produce reports bit-identical to EvalContext::evaluate on
 * every PerfReport field, for every model/task combination the paper
 * sweeps — and it must fall back to the full path (not silently
 * diverge) on retained timelines, task switches, and present-class-
 * set changes.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/eval_context.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

namespace madmax
{

namespace
{

/**
 * Exact equality on every non-timeline PerfReport field. EXPECT_EQ on
 * double compares representations exactly (no tolerance), which is
 * the contract: the delta path is a pure optimization.
 */
void
expectBitIdentical(const PerfReport &a, const PerfReport &b,
                   const std::string &what)
{
    EXPECT_EQ(a.modelName, b.modelName) << what;
    EXPECT_EQ(a.clusterName, b.clusterName) << what;
    EXPECT_EQ(a.taskName, b.taskName) << what;
    EXPECT_EQ(a.plan.toString(), b.plan.toString()) << what;
    EXPECT_EQ(a.plan.fsdpPrefetch, b.plan.fsdpPrefetch) << what;
    EXPECT_EQ(a.valid, b.valid) << what;
    EXPECT_EQ(a.memory.paramBytes, b.memory.paramBytes) << what;
    EXPECT_EQ(a.memory.gradBytes, b.memory.gradBytes) << what;
    EXPECT_EQ(a.memory.optimizerBytes, b.memory.optimizerBytes) << what;
    EXPECT_EQ(a.memory.activationBytes, b.memory.activationBytes)
        << what;
    EXPECT_EQ(a.memory.transientBytes, b.memory.transientBytes) << what;
    EXPECT_EQ(a.memory.usableCapacity, b.memory.usableCapacity) << what;
    EXPECT_EQ(a.iterationTime, b.iterationTime) << what;
    EXPECT_EQ(a.serializedTime, b.serializedTime) << what;
    EXPECT_EQ(a.computeTime, b.computeTime) << what;
    EXPECT_EQ(a.commTime, b.commTime) << what;
    EXPECT_EQ(a.exposedCommTime, b.exposedCommTime) << what;
    EXPECT_EQ(a.globalBatchSize, b.globalBatchSize) << what;
    EXPECT_EQ(a.contextLength, b.contextLength) << what;
    EXPECT_EQ(a.serializedBreakdown, b.serializedBreakdown) << what;
    EXPECT_EQ(a.exposedBreakdown, b.exposedBreakdown) << what;
}

/** The layer classes @p desc actually contains, in enum order. */
std::vector<LayerClass>
presentClasses(const ModelDesc &desc)
{
    std::set<LayerClass> seen;
    for (int i = 0; i < desc.graph.numLayers(); ++i)
        seen.insert(desc.graph.layer(i).layerClass());
    return {seen.begin(), seen.end()};
}

/**
 * Seeded randomized differential walk: start from the FSDP baseline
 * and mutate one knob per step — one present class's strategy, or
 * the prefetch flag — comparing full and delta evaluation bitwise at
 * every step. Infeasible (OOM) candidates are evaluated too: both
 * paths must short-circuit identically.
 */
void
runDifferentialWalk(ModelDesc desc, const ClusterSpec &cluster,
                    TaskSpec task, uint64_t seed, int steps = 500)
{
    PerfModelOptions opts;
    opts.keepTimeline = false;
    PerfModel perf(cluster, opts);
    EvalContext context(perf, desc, task);
    EvalContext::DeltaState state;

    const std::vector<LayerClass> classes = presentClasses(desc);
    ASSERT_FALSE(classes.empty());

    std::mt19937_64 rng(seed);
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    for (int step = 0; step < steps; ++step) {
        if (rng() % 8 == 0) {
            plan.fsdpPrefetch = !plan.fsdpPrefetch;
        } else {
            const LayerClass cls = classes[rng() % classes.size()];
            const std::vector<HierStrategy> cands =
                StrategyExplorer::candidates(cls);
            ASSERT_FALSE(cands.empty());
            plan.set(cls, cands[rng() % cands.size()]);
        }

        const PerfReport full = context.evaluate(plan);
        const PerfReport delta = context.evaluateDelta(state, plan);
        expectBitIdentical(full, delta,
                           "step " + std::to_string(step) + " plan " +
                               plan.toString());
        if (::testing::Test::HasFailure())
            break; // One mismatch is enough signal; don't spam 500.
    }
}

} // namespace

TEST(DeltaEval, WalkBitwiseIdenticalDlrmAPretrain)
{
    runDifferentialWalk(model_zoo::dlrmA(), hw_zoo::dlrmTrainingSystem(),
                        TaskSpec::preTraining(), 0xd11a);
}

TEST(DeltaEval, WalkBitwiseIdenticalDlrmAInference)
{
    runDifferentialWalk(model_zoo::dlrmA(), hw_zoo::dlrmTrainingSystem(),
                        TaskSpec::inference(), 0xd11b);
}

TEST(DeltaEval, WalkBitwiseIdenticalGpt3Pretrain)
{
    runDifferentialWalk(model_zoo::gpt3(), hw_zoo::llmTrainingSystem(),
                        TaskSpec::preTraining(), 0x69e7);
}

TEST(DeltaEval, WalkBitwiseIdenticalGpt3Inference)
{
    runDifferentialWalk(model_zoo::gpt3(), hw_zoo::llmTrainingSystem(),
                        TaskSpec::inference(), 0x69e8);
}

TEST(DeltaEval, WalkBitwiseIdenticalMoePretrain)
{
    runDifferentialWalk(model_zoo::llmMoe(), hw_zoo::llmTrainingSystem(),
                        TaskSpec::preTraining(), 0x30e1);
}

TEST(DeltaEval, WalkBitwiseIdenticalMoeInference)
{
    runDifferentialWalk(model_zoo::llmMoe(), hw_zoo::llmTrainingSystem(),
                        TaskSpec::inference(), 0x30e2);
}

/**
 * keepTimeline models fall back to the full path: the report matches
 * evaluate() including the materialized timeline, the state does not
 * advance (no splice to diff against later), and lastUsedDelta
 * reports the fall-back.
 */
TEST(DeltaEval, KeepTimelineFallsBackToFullEvaluation)
{
    ModelDesc desc = model_zoo::gpt3();
    PerfModel perf(hw_zoo::llmTrainingSystem()); // keepTimeline default.
    ASSERT_TRUE(perf.options().keepTimeline);
    TaskSpec task = TaskSpec::preTraining();
    EvalContext context(perf, desc, task);
    EvalContext::DeltaState state;

    const ParallelPlan plan = ParallelPlan::fsdpBaseline();
    const PerfReport full = context.evaluate(plan);
    const PerfReport delta = context.evaluateDelta(state, plan);

    expectBitIdentical(full, delta, "keepTimeline fall-back");
    ASSERT_EQ(full.timeline.events.size(), delta.timeline.events.size());
    EXPECT_GT(delta.timeline.events.size(), 0u);
    EXPECT_EQ(full.timeline.makespan, delta.timeline.makespan);
    EXPECT_FALSE(state.lastUsedDelta);
    EXPECT_FALSE(state.hasPlan);
    EXPECT_TRUE(state.graph.nodes.empty());
}

/**
 * A task switch (same model, other task — a different event-graph
 * shape) rebinds the state: the first evaluation under the new
 * context is a from-scratch splice, not a diff against the old one,
 * and stays bitwise correct.
 */
TEST(DeltaEval, TaskSwitchRebindsStateAndStaysBitwise)
{
    ModelDesc desc = model_zoo::gpt3();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    PerfModelOptions opts;
    opts.keepTimeline = false;
    PerfModel perf(cluster, opts);
    TaskSpec pretrain = TaskSpec::preTraining();
    TaskSpec inference = TaskSpec::inference();
    EvalContext trainCtx(perf, desc, pretrain);
    EvalContext inferCtx(perf, desc, inference);
    EvalContext::DeltaState state;

    const ParallelPlan plan = ParallelPlan::fsdpBaseline();
    trainCtx.evaluateDelta(state, plan);
    trainCtx.evaluateDelta(state, plan);
    EXPECT_TRUE(state.lastUsedDelta); // Warm within one context.

    const PerfReport full = inferCtx.evaluate(plan);
    const PerfReport delta = inferCtx.evaluateDelta(state, plan);
    expectBitIdentical(full, delta, "task switch");
    EXPECT_FALSE(state.lastUsedDelta); // From-scratch splice.

    inferCtx.evaluateDelta(state, plan);
    EXPECT_TRUE(state.lastUsedDelta); // Warm again under new binding.
}

/**
 * A present-class-set change (different ModelDesc) is the other
 * structural fall-back: the rebind starts from scratch and the first
 * evaluation under the new model is still bitwise identical.
 */
TEST(DeltaEval, ClassSetChangeRebindsStateAndStaysBitwise)
{
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    PerfModelOptions opts;
    opts.keepTimeline = false;
    PerfModel perf(cluster, opts);
    TaskSpec task = TaskSpec::preTraining();

    // DLRM-A has sparse embeddings + dense classes; the transformer
    // variant adds the Transformer class — a different class set.
    ModelDesc mlp = model_zoo::dlrmA();
    ModelDesc trans = model_zoo::dlrmATransformer();
    EvalContext mlpCtx(perf, mlp, task);
    EvalContext transCtx(perf, trans, task);
    EvalContext::DeltaState state;

    const ParallelPlan plan = ParallelPlan::fsdpBaseline();
    mlpCtx.evaluateDelta(state, plan);
    mlpCtx.evaluateDelta(state, plan);
    EXPECT_TRUE(state.lastUsedDelta);

    const PerfReport full = transCtx.evaluate(plan);
    const PerfReport delta = transCtx.evaluateDelta(state, plan);
    expectBitIdentical(full, delta, "class-set change");
    EXPECT_FALSE(state.lastUsedDelta);
}

/**
 * OOM verdicts short-circuit without touching the splice state, on
 * both the first and subsequent evaluations — and a feasible plan
 * right after still diffs against the last *spliced* plan correctly.
 */
TEST(DeltaEval, OomShortCircuitMatchesFullAndPreservesState)
{
    ModelDesc desc = model_zoo::gpt3();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    PerfModelOptions opts;
    opts.keepTimeline = false;
    PerfModel perf(cluster, opts);
    TaskSpec task = TaskSpec::preTraining();
    EvalContext context(perf, desc, task);
    EvalContext::DeltaState state;

    // Fully replicated GPT-3 training state cannot fit one device.
    ParallelPlan oom;
    oom.set(LayerClass::Transformer, HierStrategy{Strategy::DDP});
    oom.set(LayerClass::DenseEmbedding, HierStrategy{Strategy::DDP});
    oom.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    const PerfReport fullOom = context.evaluate(oom);
    ASSERT_FALSE(fullOom.valid);

    const ParallelPlan feasible = ParallelPlan::fsdpBaseline();
    context.evaluateDelta(state, feasible);
    const PerfReport deltaOom = context.evaluateDelta(state, oom);
    expectBitIdentical(fullOom, deltaOom, "OOM short-circuit");
    EXPECT_FALSE(state.lastUsedDelta);

    // The feasible re-evaluation after the OOM detour still matches.
    const PerfReport full = context.evaluate(feasible);
    const PerfReport delta = context.evaluateDelta(state, feasible);
    expectBitIdentical(full, delta, "post-OOM resume");
    EXPECT_TRUE(state.lastUsedDelta);
}

} // namespace madmax
