#include <gtest/gtest.h>

#include "core/perf_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

namespace madmax
{

namespace
{

ParallelPlan
dlrmDeployedPlan()
{
    ParallelPlan p;
    p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    p.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    return p;
}

} // namespace

TEST(PerfModel, ReportIsInternallyConsistent)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(),
                                  dlrmDeployedPlan());
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.iterationTime, 0.0);
    // Overlapped time bounded by serialized time and by compute.
    EXPECT_LE(r.iterationTime, r.serializedTime + 1e-12);
    EXPECT_GE(r.iterationTime, r.computeTime - 1e-12);
    EXPECT_NEAR(r.serializedTime, r.computeTime + r.commTime, 1e-9);
    EXPECT_GE(r.exposedCommTime, 0.0);
    EXPECT_LE(r.exposedCommTime, r.commTime + 1e-12);
    // Throughput = batch / iteration.
    EXPECT_NEAR(r.throughput(),
                r.globalBatchSize / r.iterationTime, 1e-6);
}

TEST(PerfModel, BreakdownsSumToStreamTotals)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(),
                                  dlrmDeployedPlan());
    double serialized = 0.0;
    for (const auto &[cat, secs] : r.serializedBreakdown)
        serialized += secs;
    EXPECT_NEAR(serialized, r.serializedTime, 1e-9);

    double exposed = 0.0;
    for (const auto &[cat, secs] : r.exposedBreakdown)
        exposed += secs;
    EXPECT_NEAR(exposed, r.exposedCommTime, 1e-9);

    // DLRM communication is All2All-heavy (O4 / Fig. 4c).
    double a2a = 0.0, other_comm = 0.0;
    for (const auto &[cat, secs] : r.serializedBreakdown) {
        if (cat == EventCategory::All2All)
            a2a += secs;
        else if (cat != EventCategory::Gemm &&
                 cat != EventCategory::EmbeddingLookup)
            other_comm += secs;
    }
    EXPECT_GT(a2a, 0.0);
}

TEST(PerfModel, OomReportHasNoTiming)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ParallelPlan ddp;
    ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), ddp);
    EXPECT_FALSE(r.valid);
    EXPECT_DOUBLE_EQ(r.iterationTime, 0.0);
    EXPECT_DOUBLE_EQ(r.throughput(), 0.0);
    EXPECT_FALSE(r.memory.fits());
}

TEST(PerfModel, IgnoreMemoryEvaluatesOomPlans)
{
    // The Fig. 10 "unconstrained by memory" analysis.
    PerfModelOptions opts;
    opts.ignoreMemory = true;
    PerfModel model(hw_zoo::dlrmTrainingSystem(), opts);
    ParallelPlan ddp;
    ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), ddp);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.throughput(), 0.0);
    EXPECT_FALSE(r.memory.fits()); // Memory verdict still reported.
}

TEST(PerfModel, InferenceFasterThanTraining)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport train = model.evaluate(model_zoo::dlrmA(),
                                      TaskSpec::preTraining(),
                                      dlrmDeployedPlan());
    PerfReport inf = model.evaluate(model_zoo::dlrmA(),
                                    TaskSpec::inference(),
                                    dlrmDeployedPlan());
    EXPECT_GT(inf.throughput(), train.throughput());
}

TEST(PerfModel, FineTuningBetweenInferenceAndPreTraining)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ParallelPlan plan = dlrmDeployedPlan();
    double pre = model.evaluate(model_zoo::dlrmA(),
                                TaskSpec::preTraining(), plan)
                     .throughput();
    double ft_dense =
        model.evaluate(model_zoo::dlrmA(),
                       TaskSpec::fineTuning(FineTuneScope::DenseOnly),
                       plan)
            .throughput();
    double inf = model.evaluate(model_zoo::dlrmA(),
                                TaskSpec::inference(), plan)
                     .throughput();
    EXPECT_GE(ft_dense, pre - 1e-6);
    EXPECT_GE(inf, ft_dense - 1e-6);
}

TEST(PerfModel, TokensPerSecondUsesContext)
{
    PerfModel model(hw_zoo::llmTrainingSystem());
    PerfReport r = model.evaluate(model_zoo::llama65b(),
                                  TaskSpec::preTraining(),
                                  ParallelPlan::fsdpBaseline());
    ASSERT_TRUE(r.valid);
    EXPECT_NEAR(r.tokensPerSecond(), r.throughput() * 2048.0, 1e-3);
}

TEST(PerfModel, DeviceHoursNormalization)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(),
                                  dlrmDeployedPlan());
    double hours = r.deviceHoursPerSamples(1e9, 128, 1.0);
    double expected = 1e9 / r.throughput() / 3600.0 * 128.0;
    EXPECT_NEAR(hours, expected, expected * 1e-9);
    // Peak-ratio scales linearly (Fig. 16 normalization).
    EXPECT_NEAR(r.deviceHoursPerSamples(1e9, 128, 2.0), 2.0 * hours,
                hours * 1e-9);
}

TEST(PerfModel, KeepTimelineToggle)
{
    PerfModelOptions no_tl;
    no_tl.keepTimeline = false;
    PerfModel slim(hw_zoo::dlrmTrainingSystem(), no_tl);
    PerfReport r = slim.evaluate(model_zoo::dlrmA(),
                                 TaskSpec::preTraining(),
                                 dlrmDeployedPlan());
    EXPECT_TRUE(r.timeline.events.empty());

    PerfModel fat(hw_zoo::dlrmTrainingSystem());
    PerfReport r2 = fat.evaluate(model_zoo::dlrmA(),
                                 TaskSpec::preTraining(),
                                 dlrmDeployedPlan());
    EXPECT_FALSE(r2.timeline.events.empty());
}

TEST(PerfModel, WithClusterRebinds)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfModel boosted =
        model.withCluster(model.cluster().withComputeScale(10.0));
    double t1 = model
                    .evaluate(model_zoo::dlrmA(), TaskSpec::preTraining(),
                              dlrmDeployedPlan())
                    .computeTime;
    double t2 = boosted
                    .evaluate(model_zoo::dlrmA(), TaskSpec::preTraining(),
                              dlrmDeployedPlan())
                    .computeTime;
    EXPECT_LT(t2, t1);
}

// Property sweep over the whole model zoo: every model evaluates
// under the FSDP baseline on its natural system without internal
// errors, and reports stay consistent.
class ZooEvaluation : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ZooEvaluation, FsdpBaselineIsWellFormed)
{
    std::vector<ModelDesc> suite = model_zoo::tableIISuite();
    const ModelDesc &m = suite[GetParam()];
    ClusterSpec cluster = m.isRecommendation
        ? hw_zoo::dlrmTrainingSystem()
        : hw_zoo::llmTrainingSystem();
    PerfModel model(cluster);
    PerfReport r = model.evaluate(m, TaskSpec::preTraining(),
                                  ParallelPlan::fsdpBaseline());
    ASSERT_TRUE(r.valid) << m.name;
    EXPECT_GT(r.throughput(), 0.0) << m.name;
    EXPECT_LE(r.iterationTime, r.serializedTime + 1e-12) << m.name;
    EXPECT_GE(r.overlapFraction(), 0.0) << m.name;
    EXPECT_LE(r.overlapFraction(), 1.0 + 1e-12) << m.name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooEvaluation,
                         ::testing::Range<size_t>(0, 10));

// Scaling properties (Fig. 19 mechanics).
TEST(PerfModelScaling, BandwidthSpeedsUpComm)
{
    ClusterSpec base = hw_zoo::dlrmTrainingSystem();
    PerfModel slow(base);
    PerfModel fast(base.withInterBandwidthScale(10.0));
    ParallelPlan plan = dlrmDeployedPlan();
    PerfReport r1 = slow.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), plan);
    PerfReport r2 = fast.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), plan);
    EXPECT_LT(r2.commTime, r1.commTime);
    EXPECT_GT(r2.throughput(), r1.throughput());
    // Compute is untouched.
    EXPECT_NEAR(r2.computeTime, r1.computeTime, 1e-12);
}

TEST(PerfModelScaling, ComputeScaleLeavesCommAlone)
{
    ClusterSpec base = hw_zoo::dlrmTrainingSystem();
    PerfModel slow(base);
    PerfModel fast(base.withComputeScale(10.0));
    ParallelPlan plan = dlrmDeployedPlan();
    PerfReport r1 = slow.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), plan);
    PerfReport r2 = fast.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), plan);
    EXPECT_NEAR(r2.commTime, r1.commTime, 1e-12);
    EXPECT_LT(r2.computeTime, r1.computeTime);
}

} // namespace madmax
