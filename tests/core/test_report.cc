#include <gtest/gtest.h>

#include "core/report.hh"

namespace madmax
{

namespace
{

PerfReport
sampleReport()
{
    PerfReport r;
    r.modelName = "DLRM-A";
    r.clusterName = "ZionEX";
    r.taskName = "pre-training";
    r.valid = true;
    r.iterationTime = 0.054;
    r.serializedTime = 0.072;
    r.computeTime = 0.027;
    r.commTime = 0.045;
    r.exposedCommTime = 0.036;
    r.globalBatchSize = 65536;
    r.contextLength = 1;
    r.memory.paramBytes = 24.0 * (1ull << 30);
    r.memory.usableCapacity = 28.0 * (1ull << 30);
    return r;
}

} // namespace

TEST(PerfReport, ThroughputAndTokens)
{
    PerfReport r = sampleReport();
    EXPECT_NEAR(r.throughput(), 65536.0 / 0.054, 1e-6);
    EXPECT_NEAR(r.tokensPerSecond(), r.throughput(), 1e-9);
    r.contextLength = 2048;
    EXPECT_NEAR(r.tokensPerSecond(), r.throughput() * 2048, 1e-3);
}

TEST(PerfReport, InvalidReportsZeroThroughput)
{
    PerfReport r = sampleReport();
    r.valid = false;
    EXPECT_DOUBLE_EQ(r.throughput(), 0.0);
    EXPECT_DOUBLE_EQ(r.deviceHoursPerSamples(1e9, 128), 0.0);
}

TEST(PerfReport, OverlapAndExposureFractions)
{
    PerfReport r = sampleReport();
    EXPECT_NEAR(r.exposedFraction(), 0.8, 1e-12);
    EXPECT_NEAR(r.overlapFraction(), 0.2, 1e-12);
    r.commTime = 0.0;
    r.exposedCommTime = 0.0;
    EXPECT_DOUBLE_EQ(r.exposedFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.overlapFraction(), 0.0);
}

TEST(PerfReport, SummaryMentionsKeyNumbers)
{
    PerfReport r = sampleReport();
    std::string s = r.summary();
    EXPECT_NE(s.find("DLRM-A"), std::string::npos);
    EXPECT_NE(s.find("ZionEX"), std::string::npos);
    EXPECT_NE(s.find("54.000 ms"), std::string::npos);
    EXPECT_NE(s.find("80.00% of comm"), std::string::npos);
}

TEST(PerfReport, InvalidSummaryShowsOom)
{
    PerfReport r = sampleReport();
    r.valid = false;
    r.memory.paramBytes = 50.0 * (1ull << 30);
    std::string s = r.summary();
    EXPECT_NE(s.find("INVALID (OOM)"), std::string::npos);
}

} // namespace madmax
