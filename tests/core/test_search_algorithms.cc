/**
 * @file
 * Search-algorithm tests: coordinate descent vs exhaustive search,
 * plus a cross-product property battery asserting performance-model
 * invariants over every (model x task x strategy) combination the
 * explorer can produce.
 */

#include <gtest/gtest.h>

#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

namespace madmax
{

TEST(CoordinateDescent, MatchesExhaustiveOnDlrmA)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);

    ExplorationResult exhaustive =
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining());
    long exhaustive_evals = exhaustive.stats.requests();

    ExplorerOptions cd;
    cd.algorithm = SearchAlgorithm::CoordinateDescent;
    ExplorationResult greedy =
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining(), cd);
    long greedy_evals = greedy.stats.requests();

    // Same optimum on this workload, found with fewer evaluations
    // than the full product would eventually need on larger spaces.
    EXPECT_NEAR(greedy.report.throughput() /
                    exhaustive.report.throughput(),
                1.0, 1e-6);
    EXPECT_GT(exhaustive_evals, 0);
    EXPECT_GT(greedy_evals, 0);
}

TEST(CoordinateDescent, NearOptimalAcrossSuite)
{
    // Greedy search reaches >= 95% of the exhaustive optimum for
    // every Table II model (in practice it matches exactly).
    for (const ModelDesc &m : model_zoo::tableIISuite()) {
        ClusterSpec cluster = m.isRecommendation
            ? hw_zoo::dlrmTrainingSystem()
            : hw_zoo::llmTrainingSystem();
        PerfModel model(cluster);
        StrategyExplorer explorer(model);
        double exhaustive = explorer.best(m, TaskSpec::preTraining())
                                .report.throughput();
        ExplorerOptions cd;
        cd.algorithm = SearchAlgorithm::CoordinateDescent;
        double greedy = explorer.best(m, TaskSpec::preTraining(), cd)
                            .report.throughput();
        EXPECT_GE(greedy, 0.95 * exhaustive) << m.name;
        EXPECT_LE(greedy, exhaustive + 1e-6) << m.name;
    }
}

TEST(CoordinateDescent, FewerEvaluationsOnLargeSpaces)
{
    // LLM-MoE spans 8 x 8 x 5 x 2 = 640 exhaustive plans; greedy
    // sweeps a fraction of that.
    PerfModel model(hw_zoo::llmTrainingSystem());
    StrategyExplorer explorer(model);
    ModelDesc m = model_zoo::llmMoe();

    long exhaustive_evals =
        explorer.best(m, TaskSpec::preTraining()).stats.requests();

    ExplorerOptions cd;
    cd.algorithm = SearchAlgorithm::CoordinateDescent;
    long greedy_evals =
        explorer.best(m, TaskSpec::preTraining(), cd).stats.requests();

    EXPECT_LT(greedy_evals, exhaustive_evals / 2);
}

TEST(CoordinateDescent, SupportsUnconstrainedSearch)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    ExplorerOptions cd;
    cd.algorithm = SearchAlgorithm::CoordinateDescent;
    cd.ignoreMemory = true;
    ExplorationResult r =
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining(), cd);
    EXPECT_TRUE(r.report.valid);
    EXPECT_GT(r.report.throughput(), 0.0);
}

// --- Cross-product property battery -----------------------------------

struct PropertyCase
{
    size_t modelIdx;
    TaskKind task;
};

class PerfModelProperties
    : public ::testing::TestWithParam<std::tuple<size_t, int>>
{
};

TEST_P(PerfModelProperties, InvariantsHoldAcrossStrategySpace)
{
    auto [model_idx, task_idx] = GetParam();
    std::vector<ModelDesc> suite = model_zoo::tableIISuite();
    const ModelDesc &m = suite[model_idx];
    const TaskSpec tasks[] = {TaskSpec::preTraining(),
                              TaskSpec::inference(),
                              TaskSpec::fineTuning(
                                  FineTuneScope::DenseOnly)};
    const TaskSpec &task = tasks[task_idx];

    ClusterSpec cluster = m.isRecommendation
        ? hw_zoo::dlrmTrainingSystem()
        : hw_zoo::llmTrainingSystem();
    PerfModelOptions opts;
    opts.keepTimeline = false;
    PerfModel model(cluster, opts);
    StrategyExplorer explorer(model);

    for (const ExplorationResult &r :
         explorer.explore(m, task).results) {
        const PerfReport &rep = r.report;
        if (!rep.valid) {
            EXPECT_FALSE(rep.memory.fits()) << r.plan.toString();
            continue;
        }
        // Time accounting invariants (relative tolerances: fully-
        // exposed plans have makespan == serialized time up to
        // summation order).
        const double rel = 1.0 + 1e-9;
        EXPECT_GT(rep.iterationTime, 0.0) << r.plan.toString();
        EXPECT_LE(rep.iterationTime, rep.serializedTime * rel)
            << r.plan.toString();
        EXPECT_GE(rep.iterationTime * rel, rep.computeTime)
            << r.plan.toString();
        EXPECT_NEAR(rep.serializedTime, rep.computeTime + rep.commTime,
                    rep.serializedTime * 1e-9)
            << r.plan.toString();
        EXPECT_GE(rep.exposedCommTime, -1e-9) << r.plan.toString();
        EXPECT_LE(rep.exposedCommTime, rep.commTime * rel)
            << r.plan.toString();
        // Memory invariants.
        EXPECT_GT(rep.memory.paramBytes, 0.0) << r.plan.toString();
        if (task.kind == TaskKind::Inference) {
            EXPECT_DOUBLE_EQ(rep.memory.gradBytes, 0.0)
                << r.plan.toString();
            EXPECT_DOUBLE_EQ(rep.memory.optimizerBytes, 0.0)
                << r.plan.toString();
        }
        // Breakdown consistency.
        double serialized = 0.0;
        for (const auto &[cat, secs] : rep.serializedBreakdown)
            serialized += secs;
        EXPECT_NEAR(serialized, rep.serializedTime,
                    rep.serializedTime * 1e-9)
            << r.plan.toString();
    }
}

std::string
propertyCaseName(
    const ::testing::TestParamInfo<std::tuple<size_t, int>> &info)
{
    static const char *tasks[] = {"pretrain", "inference", "finetune"};
    std::string name =
        model_zoo::tableIISuite()[std::get<0>(info.param)].name;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name + "_" + tasks[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    SuiteByTask, PerfModelProperties,
    ::testing::Combine(::testing::Range<size_t>(0, 10),
                       ::testing::Range(0, 3)),
    propertyCaseName);

} // namespace madmax
