/**
 * @file
 * Tests for the extension features beyond the paper's core model:
 * per-GPU embedding lookup skew (§IV-B's uneven-sharding adjustment),
 * ring/tree AllReduce selection, the background communication
 * channel, and the operational-energy estimate.
 */

#include <gtest/gtest.h>

#include "core/layer_processor.hh"
#include "core/perf_model.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

ModelDesc
skewedDlrm(double skew)
{
    ModelDesc m;
    m.name = "skewed-dlrm";
    m.globalBatchSize = 65536;
    m.contextLength = 1;
    m.isRecommendation = true;
    int emb = m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 500, 12385672, 128, 88.32, 4.0, skew));
    int bot = m.graph.addLayer(std::make_unique<MlpLayer>(
        "Bot_MLP", LayerClass::BaseDense,
        std::vector<long>{256, 512, 256, 128}));
    int inter = m.graph.addLayer(std::make_unique<InteractionLayer>(
        "Interact", 501, 128, 512), {emb, bot});
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "Top_MLP", LayerClass::BaseDense,
        std::vector<long>{512, 8192, 8192, 1}), {inter});
    return m;
}

ParallelPlan
dlrmPlan()
{
    ParallelPlan p;
    p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    p.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    return p;
}

} // namespace

TEST(LookupSkew, HottestDeviceGatesLookupTime)
{
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    ModelDesc even = skewedDlrm(1.0);
    ModelDesc hot = skewedDlrm(2.0);
    LayerProcessor p_even(cluster, even);
    LayerProcessor p_hot(cluster, hot);
    EXPECT_NEAR(p_hot.forwardTime(hot.graph.layer(0)) /
                    p_even.forwardTime(even.graph.layer(0)),
                2.0, 1e-9);
    // Backward table update scales the same way.
    EXPECT_NEAR(p_hot.backwardTime(hot.graph.layer(0),
                                   TaskSpec::preTraining()) /
                    p_even.backwardTime(even.graph.layer(0),
                                        TaskSpec::preTraining()),
                2.0, 1e-9);
}

TEST(LookupSkew, SkewReducesThroughputMonotonically)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    double prev = 1e300;
    for (double skew : {1.0, 1.25, 1.5, 2.0, 3.0}) {
        PerfReport r = model.evaluate(skewedDlrm(skew),
                                      TaskSpec::preTraining(),
                                      dlrmPlan());
        ASSERT_TRUE(r.valid);
        EXPECT_LT(r.throughput(), prev);
        prev = r.throughput();
    }
}

TEST(LookupSkew, SubUnitySkewIsFatal)
{
    EXPECT_THROW(EmbeddingBagLayer("e", 10, 100, 64, 2.0, 4.0, 0.5),
                 ConfigError);
}

TEST(BackgroundChannel, DisablingItSlowsIterations)
{
    // Ablation of the design choice: without a background channel,
    // gradient AllReduces head-of-line block the embedding gradient
    // All2All.
    ModelDesc model = model_zoo::dlrmA();
    PerfModelOptions with;
    PerfModelOptions without;
    without.backgroundCommChannel = false;
    PerfReport r_with =
        PerfModel(hw_zoo::dlrmTrainingSystem(), with)
            .evaluate(model, TaskSpec::preTraining(), dlrmPlan());
    PerfReport r_without =
        PerfModel(hw_zoo::dlrmTrainingSystem(), without)
            .evaluate(model, TaskSpec::preTraining(), dlrmPlan());
    EXPECT_LT(r_with.iterationTime, r_without.iterationTime);
    // Communication volume is identical; only scheduling differs.
    EXPECT_NEAR(r_with.commTime, r_without.commTime, 1e-12);
}

TEST(AllReduceAlgorithmOption, RingForcedThroughPerfModel)
{
    // Forcing ring on the 256-node system pays per-hop latency on
    // every gradient AllReduce; auto should never be slower.
    ModelDesc model = model_zoo::llama65b();
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    plan.set(LayerClass::Transformer,
             HierStrategy{Strategy::FSDP, Strategy::DDP});

    PerfModelOptions ring;
    ring.allReduceAlgorithm = AllReduceAlgorithm::Ring;
    ring.ignoreMemory = true;
    PerfModelOptions autosel;
    autosel.allReduceAlgorithm = AllReduceAlgorithm::Auto;
    autosel.ignoreMemory = true;

    PerfReport r_ring =
        PerfModel(hw_zoo::llmTrainingSystem(), ring)
            .evaluate(model, TaskSpec::preTraining(), plan);
    PerfReport r_auto =
        PerfModel(hw_zoo::llmTrainingSystem(), autosel)
            .evaluate(model, TaskSpec::preTraining(), plan);
    EXPECT_LE(r_auto.commTime, r_ring.commTime + 1e-12);
}

TEST(EnergyModel, ScalesWithTdpAndTime)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(), dlrmPlan());
    ASSERT_TRUE(r.valid);
    double kwh =
        energyKwhPerSamples(r, model.cluster(), 1e9);
    // 128 devices x 400 W x elapsed seconds / 3.6e6.
    double expected =
        1e9 / r.throughput() * 400.0 * 128.0 / 3.6e6;
    EXPECT_NEAR(kwh, expected, expected * 1e-9);
    EXPECT_GT(kwh, 0.0);

    // No TDP on record: no estimate.
    ClusterSpec anon = model.cluster();
    anon.device.tdpWatts = 0.0;
    EXPECT_DOUBLE_EQ(energyKwhPerSamples(r, anon, 1e9), 0.0);

    // Invalid reports yield no estimate.
    PerfReport bad;
    EXPECT_DOUBLE_EQ(energyKwhPerSamples(bad, model.cluster(), 1e9),
                     0.0);
}

TEST(EnergyModel, FasterPlansUseLessEnergy)
{
    // Insight 7 "by extension": fewer GPU-hours means less energy on
    // the same hardware.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport fsdp = model.evaluate(model_zoo::dlrmA(),
                                     TaskSpec::preTraining(),
                                     ParallelPlan::fsdpBaseline());
    PerfReport best = model.evaluate(model_zoo::dlrmA(),
                                     TaskSpec::preTraining(),
                                     dlrmPlan());
    EXPECT_LT(energyKwhPerSamples(best, model.cluster(), 1e9),
              energyKwhPerSamples(fsdp, model.cluster(), 1e9));
}

TEST(EnergyModel, ZooDevicesCarryTdp)
{
    EXPECT_DOUBLE_EQ(hw_zoo::a100_40().tdpWatts, 400.0);
    EXPECT_DOUBLE_EQ(hw_zoo::a100_80().tdpWatts, 400.0);
    EXPECT_DOUBLE_EQ(hw_zoo::h100().tdpWatts, 700.0);
    EXPECT_DOUBLE_EQ(hw_zoo::mi300x().tdpWatts, 750.0);
    EXPECT_DOUBLE_EQ(hw_zoo::gaudi2().tdpWatts, 600.0);
}

} // namespace madmax
