#include <gtest/gtest.h>

#include "core/overlap_simulator.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

TraceEvent
ev(int id, StreamKind stream, double dur, std::vector<int> deps = {},
   bool blocking = true)
{
    TraceEvent e;
    e.id = id;
    e.name = "e" + std::to_string(id);
    e.stream = stream;
    e.duration = dur;
    e.deps = std::move(deps);
    e.blocking = blocking;
    return e;
}

constexpr StreamKind C = StreamKind::Compute;
constexpr StreamKind N = StreamKind::Communication;

} // namespace

TEST(OverlapSimulator, SequentialComputeChain)
{
    OverlapSimulator sim;
    Timeline tl = sim.schedule({ev(0, C, 1.0), ev(1, C, 2.0, {0}),
                                ev(2, C, 3.0, {1})});
    EXPECT_DOUBLE_EQ(tl.makespan, 6.0);
    EXPECT_DOUBLE_EQ(tl.computeBusy, 6.0);
    EXPECT_DOUBLE_EQ(tl.commBusy, 0.0);
    EXPECT_DOUBLE_EQ(tl.exposedComm, 0.0);
}

TEST(OverlapSimulator, StreamOrderSerializesWithoutDeps)
{
    // Two independent compute events still execute in issue order on
    // the single compute stream.
    OverlapSimulator sim;
    Timeline tl = sim.schedule({ev(0, C, 1.0), ev(1, C, 1.0)});
    EXPECT_DOUBLE_EQ(tl.makespan, 2.0);
    EXPECT_DOUBLE_EQ(tl.events[1].start, 1.0);
}

TEST(OverlapSimulator, IndependentCommOverlapsCompute)
{
    OverlapSimulator sim;
    Timeline tl = sim.schedule({ev(0, C, 4.0), ev(1, N, 3.0)});
    EXPECT_DOUBLE_EQ(tl.makespan, 4.0);
    EXPECT_DOUBLE_EQ(tl.commBusy, 3.0);
    // Fully hidden behind the concurrent compute.
    EXPECT_DOUBLE_EQ(tl.exposedComm, 0.0);
    EXPECT_DOUBLE_EQ(tl.overlapFraction(), 1.0);
}

TEST(OverlapSimulator, BlockingCommGatesDependentCompute)
{
    // EMB -> A2A -> MLP: the Fig. 6 exposed-communication pattern.
    OverlapSimulator sim;
    Timeline tl = sim.schedule({
        ev(0, C, 2.0),           // EMB lookup.
        ev(1, N, 3.0, {0}),      // Blocking A2A.
        ev(2, C, 1.0, {1}),      // MLP needs the A2A result.
    });
    EXPECT_DOUBLE_EQ(tl.makespan, 6.0);
    EXPECT_DOUBLE_EQ(tl.events[2].start, 5.0);
    // The A2A runs while compute idles: fully exposed.
    EXPECT_DOUBLE_EQ(tl.exposedComm, 3.0);
}

TEST(OverlapSimulator, PartialOverlapAccounting)
{
    OverlapSimulator sim;
    Timeline tl = sim.schedule({
        ev(0, C, 2.0),
        ev(1, N, 4.0, {0}),      // Starts at 2, ends at 6.
        ev(2, C, 2.0, {0}),      // Runs 2..4, overlapping half the comm.
        ev(3, C, 1.0, {1, 2}),   // Needs the comm: starts at 6.
    });
    EXPECT_DOUBLE_EQ(tl.makespan, 7.0);
    EXPECT_DOUBLE_EQ(tl.exposedComm, 2.0); // 4..6 uncovered.
    EXPECT_DOUBLE_EQ(tl.overlappedComm(), 2.0);
}

TEST(OverlapSimulator, NonBlockingCommRidesBackgroundChannel)
{
    // A long non-blocking gradient AllReduce must not head-of-line
    // block a later blocking collective.
    OverlapSimulator sim;
    Timeline tl = sim.schedule({
        ev(0, C, 1.0),
        ev(1, N, 10.0, {0}, false), // Gradient AR in background.
        ev(2, N, 2.0, {0}, true),   // Blocking A2A issued after it.
        ev(3, C, 1.0, {2}),
    });
    const ScheduledEvent &a2a = tl.events[2];
    EXPECT_DOUBLE_EQ(a2a.start, 1.0);  // Not stuck behind the AR.
    EXPECT_DOUBLE_EQ(tl.events[3].start, 3.0);
    EXPECT_DOUBLE_EQ(tl.makespan, 11.0); // AR finishes at 11.
}

TEST(OverlapSimulator, BlockingCommQueuesInOrder)
{
    OverlapSimulator sim;
    Timeline tl = sim.schedule({
        ev(0, N, 2.0),
        ev(1, N, 2.0), // Same stream: starts at 2 even with no dep.
    });
    EXPECT_DOUBLE_EQ(tl.events[1].start, 2.0);
    EXPECT_DOUBLE_EQ(tl.makespan, 4.0);
}

TEST(OverlapSimulator, ZeroDurationBarrier)
{
    OverlapSimulator sim;
    Timeline tl = sim.schedule({
        ev(0, C, 1.0),
        ev(1, N, 5.0, {}, false),
        ev(2, C, 0.0, {0, 1}), // Barrier waits for the background AR.
    });
    EXPECT_DOUBLE_EQ(tl.makespan, 5.0);
    EXPECT_DOUBLE_EQ(tl.events[2].start, 5.0);
}

TEST(OverlapSimulator, DuplicateIdsPanic)
{
    OverlapSimulator sim;
    EXPECT_THROW(sim.schedule({ev(0, C, 1.0), ev(0, C, 1.0)}),
                 InternalError);
}

TEST(OverlapSimulator, ForwardDependencyPanics)
{
    OverlapSimulator sim;
    EXPECT_THROW(sim.schedule({ev(0, C, 1.0, {5})}), InternalError);
}

TEST(OverlapSimulator, EmptyScheduleIsEmptyTimeline)
{
    OverlapSimulator sim;
    Timeline tl = sim.schedule({});
    EXPECT_DOUBLE_EQ(tl.makespan, 0.0);
    EXPECT_TRUE(tl.events.empty());
}

// Invariant sweep: for random-ish DAGs, makespan is bounded by
// serialized time below and by the critical path above, and exposed
// comm never exceeds total comm.
class OverlapInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(OverlapInvariants, BoundsHold)
{
    int seed = GetParam();
    // Deterministic pseudo-random DAG from the seed.
    std::vector<TraceEvent> events;
    unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
    auto next = [&state]() {
        state = state * 1664525u + 1013904223u;
        return state;
    };
    for (int i = 0; i < 40; ++i) {
        StreamKind s = (next() % 2 == 0) ? C : N;
        double dur = 0.5 + static_cast<double>(next() % 100) / 25.0;
        std::vector<int> deps;
        if (i > 0 && next() % 3 != 0)
            deps.push_back(
                static_cast<int>(next() % static_cast<unsigned>(i)));
        bool blocking = next() % 4 != 0;
        events.push_back(ev(i, s, dur, std::move(deps), blocking));
    }

    OverlapSimulator sim;
    Timeline tl = sim.schedule(events);
    EXPECT_LE(tl.makespan, tl.serialized() + 1e-9);
    EXPECT_GE(tl.makespan, tl.computeBusy - 1e-9);
    EXPECT_GE(tl.exposedComm, -1e-9);
    EXPECT_LE(tl.exposedComm, tl.commBusy + 1e-9);
    // Every event starts after its deps.
    for (const ScheduledEvent &se : tl.events) {
        for (int dep : se.event.deps) {
            const ScheduledEvent &d = tl.events[static_cast<size_t>(dep)];
            EXPECT_GE(se.start, d.finish - 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapInvariants,
                         ::testing::Range(1, 21));

} // namespace madmax
