#include <gtest/gtest.h>

#include "core/perf_model.hh"
#include "core/validation.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

namespace madmax
{

TEST(ValidationEntry, AccuracyConvention)
{
    // The paper quotes accuracy as 100% minus relative error.
    ValidationEntry e{"x", 67.40, 65.30};
    EXPECT_NEAR(e.accuracy(), 1.0 - 2.10 / 67.40, 1e-12);
    ValidationEntry exact{"x", 5.0, 5.0};
    EXPECT_DOUBLE_EQ(exact.accuracy(), 1.0);
    ValidationEntry zero{"x", 0.0, 1.0};
    EXPECT_DOUBLE_EQ(zero.accuracy(), 0.0);
    ValidationEntry both_zero{"x", 0.0, 0.0};
    EXPECT_DOUBLE_EQ(both_zero.accuracy(), 1.0);
}

TEST(ValidationReport, Aggregates)
{
    ValidationReport r;
    r.entries.push_back(ValidationEntry{"a", 10.0, 9.0});  // 90%.
    r.entries.push_back(ValidationEntry{"b", 10.0, 10.0}); // 100%.
    EXPECT_NEAR(r.meanAccuracy(), 0.95, 1e-12);
    EXPECT_NEAR(r.minAccuracy(), 0.90, 1e-12);
    EXPECT_NE(r.toString().find("mean accuracy"), std::string::npos);

    ValidationReport empty;
    EXPECT_DOUBLE_EQ(empty.meanAccuracy(), 0.0);
    EXPECT_DOUBLE_EQ(empty.minAccuracy(), 1.0);
}

TEST(Validate, ComparesOnlyReferencedQuantities)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});
    PerfReport report = model.evaluate(model_zoo::dlrmA(),
                                       TaskSpec::preTraining(), plan);

    MeasuredReference ref;
    ref.name = "DLRM-A/ZionEX";
    ref.iterationTime = 0.0562; // "Measured" end-to-end.
    ref.exposedFraction = 0.8237;
    ref.serializedBreakdown[EventCategory::All2All] = 0.016;

    ValidationReport v = validate(report, ref);
    ASSERT_EQ(v.entries.size(), 3u);
    // Our calibrated model should sit well above 80% on every entry.
    EXPECT_GT(v.minAccuracy(), 0.80);
    EXPECT_GT(v.meanAccuracy(), 0.90);
}

TEST(Validate, MissingModeledCategoryScoresZero)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport report = model.evaluate(model_zoo::dlrmA(),
                                       TaskSpec::inference(),
                                       ParallelPlan::fsdpBaseline());
    MeasuredReference ref;
    // Inference has no ReduceScatter; a reference demanding one gets
    // accuracy 0 for that entry.
    ref.serializedBreakdown[EventCategory::ReduceScatter] = 0.010;
    ValidationReport v = validate(report, ref);
    ASSERT_EQ(v.entries.size(), 1u);
    EXPECT_DOUBLE_EQ(v.entries[0].accuracy(), 0.0);
}

TEST(Mfu, TrainingVsInferenceFactors)
{
    ModelDesc model = model_zoo::llama65b();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    PerfModel pm(cluster);
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    plan.fsdpPrefetch = true;
    PerfReport train = pm.evaluate(model, TaskSpec::preTraining(), plan);
    PerfReport inf = pm.evaluate(model, TaskSpec::inference(), plan);

    double mfu_train =
        modelFlopsUtilization(train, model, cluster, true);
    double mfu_inf = modelFlopsUtilization(inf, model, cluster, false);
    // LLaMA production landed near ~48% MFU; our model should be in
    // the 35-65% band, and inference stays a sane fraction too.
    EXPECT_GT(mfu_train, 0.35);
    EXPECT_LT(mfu_train, 0.65);
    EXPECT_GT(mfu_inf, 0.10);
    EXPECT_LT(mfu_inf, 0.70);

    PerfReport bad;
    EXPECT_DOUBLE_EQ(modelFlopsUtilization(bad, model, cluster, true),
                     0.0);
}

TEST(Mfu, NeverExceedsComputeUtilizationCeiling)
{
    // MFU counts only model FLOPs; it cannot exceed the SM
    // utilization ceiling used to price compute.
    for (const ModelDesc &m : model_zoo::tableIISuite()) {
        ClusterSpec cluster = m.isRecommendation
            ? hw_zoo::dlrmTrainingSystem()
            : hw_zoo::llmTrainingSystem();
        PerfModel pm(cluster);
        PerfReport r = pm.evaluate(m, TaskSpec::preTraining(),
                                   ParallelPlan::fsdpBaseline());
        if (!r.valid)
            continue;
        double mfu = modelFlopsUtilization(r, m, cluster, true);
        EXPECT_LE(mfu, cluster.util.compute + 1e-9) << m.name;
        EXPECT_GE(mfu, 0.0) << m.name;
    }
}

} // namespace madmax
