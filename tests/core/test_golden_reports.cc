/**
 * @file
 * Golden snapshot tests: the full numeric content of every PerfReport
 * an explore() sweep produces — rankings, timing fields, memory
 * verdicts, breakdowns, and a digest of the scheduled Timeline — is
 * compared byte-for-byte against checked-in golden files generated
 * before the evaluation-hot-path overhaul (shared EvalContext, flat
 * event graph, linear-sweep overlap accounting). Any change to these
 * files means the optimization changed results, which it must not.
 *
 * The serve surface is covered too: the exact /v1/evaluate response
 * body for the shipped configs/ triple is snapshotted.
 *
 * Regenerate (only when an *intentional* model change lands) with:
 *   MADMAX_REGEN_GOLDEN=1 ./test_golden_reports
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "../golden_check.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "serve/service.hh"
#include "util/strfmt.hh"

namespace madmax
{

namespace
{

using testing::checkGolden;

/** FNV-1a over the scheduled Timeline: every event's identity, DAG
 *  shape, name, and scheduled interval, plus the aggregates. A report
 *  whose timeline was stripped (cache-served duplicate) digests to the
 *  empty-timeline value, which is itself part of the contract. */
std::string
timelineDigest(const Timeline &tl)
{
    uint64_t h = 1469598103934665603ull;
    auto mixByte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    auto mixInt = [&](uint64_t v) {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<unsigned char>((v >> (i * 8)) & 0xffu));
    };
    auto mixDouble = [&](double v) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mixInt(bits);
    };
    auto mixString = [&](const std::string &s) {
        mixInt(s.size());
        for (char c : s)
            mixByte(static_cast<unsigned char>(c));
    };
    mixInt(tl.events.size());
    for (const ScheduledEvent &se : tl.events) {
        const TraceEvent &ev = se.event;
        mixInt(static_cast<uint64_t>(ev.id));
        mixString(ev.name);
        mixInt(static_cast<uint64_t>(ev.stream));
        mixInt(static_cast<uint64_t>(ev.category));
        mixDouble(ev.duration);
        mixInt(ev.deps.size());
        for (int d : ev.deps)
            mixInt(static_cast<uint64_t>(d));
        mixInt(ev.blocking ? 1 : 0);
        mixInt(static_cast<uint64_t>(ev.layerIdx));
        mixInt(ev.backward ? 1 : 0);
        mixDouble(se.start);
        mixDouble(se.finish);
    }
    mixDouble(tl.makespan);
    mixDouble(tl.computeBusy);
    mixDouble(tl.commBusy);
    mixDouble(tl.exposedComm);
    return strfmt("%016llx", static_cast<unsigned long long>(h));
}

/** Every numeric field of one report, doubles rendered %.17g (exact
 *  round trip), in a fixed line layout. */
std::string
dumpReport(const PerfReport &r)
{
    std::string out;
    out += "model=" + r.modelName + " cluster=" + r.clusterName +
        " task=" + r.taskName + "\n";
    out += "plan=" + r.plan.toString() +
        strfmt(" prefetch=%d valid=%d gbs=%ld ctx=%ld\n",
               r.plan.fsdpPrefetch ? 1 : 0, r.valid ? 1 : 0,
               r.globalBatchSize, r.contextLength);
    out += strfmt("mem param=%.17g grad=%.17g opt=%.17g act=%.17g "
                  "trans=%.17g usable=%.17g\n",
                  r.memory.paramBytes, r.memory.gradBytes,
                  r.memory.optimizerBytes, r.memory.activationBytes,
                  r.memory.transientBytes, r.memory.usableCapacity);
    out += strfmt("time iter=%.17g ser=%.17g comp=%.17g comm=%.17g "
                  "exp=%.17g\n",
                  r.iterationTime, r.serializedTime, r.computeTime,
                  r.commTime, r.exposedCommTime);
    out += "sbd";
    for (const auto &[cat, sec] : r.serializedBreakdown)
        out += strfmt(" %s=%.17g", toString(cat).c_str(), sec);
    out += "\nebd";
    for (const auto &[cat, sec] : r.exposedBreakdown)
        out += strfmt(" %s=%.17g", toString(cat).c_str(), sec);
    out += strfmt("\ntl n=%zu digest=%s\n", r.timeline.events.size(),
                  timelineDigest(r.timeline).c_str());
    return out;
}

/** One explore() sweep through a fresh engine, dumped rank by rank. */
std::string
dumpExploration(const ModelDesc &desc, const TaskSpec &task,
                const ClusterSpec &cluster, const ExplorerOptions &opts,
                int jobs)
{
    EvalEngineOptions eo;
    eo.jobs = jobs;
    EvalEngine engine(eo);
    PerfModel perf(cluster);
    StrategyExplorer explorer(perf, &engine);
    Exploration ex = explorer.explore(desc, task, opts);

    std::string out;
    out += strfmt("results=%zu\n", ex.results.size());
    for (size_t i = 0; i < ex.results.size(); ++i) {
        out += strfmt("== rank %03zu ==\n", i);
        out += dumpReport(ex.results[i].report);
    }
    return out;
}

} // namespace

TEST(GoldenReports, ExploreGpt3PretrainIsByteIdenticalAcrossJobs)
{
    ModelDesc desc = model_zoo::gpt3();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    ExplorerOptions opts;
    opts.explorePrefetch = true;

    std::string jobs1 = dumpExploration(desc, TaskSpec::preTraining(),
                                        cluster, opts, 1);
    std::string jobs4 = dumpExploration(desc, TaskSpec::preTraining(),
                                        cluster, opts, 4);
    EXPECT_EQ(jobs1, jobs4)
        << "explore() must be bitwise thread-count independent";
    checkGolden("explore_gpt3_pretrain.txt", jobs1);
}

TEST(GoldenReports, ExploreGpt3IgnoreMemory)
{
    ModelDesc desc = model_zoo::gpt3();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    ExplorerOptions opts;
    opts.ignoreMemory = true;
    checkGolden("explore_gpt3_nomem.txt",
                dumpExploration(desc, TaskSpec::preTraining(), cluster,
                                opts, 1));
}

TEST(GoldenReports, ExploreGpt3Inference)
{
    ModelDesc desc = model_zoo::gpt3();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    checkGolden("explore_gpt3_inference.txt",
                dumpExploration(desc, TaskSpec::inference(), cluster,
                                ExplorerOptions{}, 1));
}

TEST(GoldenReports, ExploreDlrmAPretrain)
{
    ModelDesc desc = model_zoo::dlrmA();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    ExplorerOptions opts;
    opts.explorePrefetch = true;
    checkGolden("explore_dlrm_a_pretrain.txt",
                dumpExploration(desc, TaskSpec::preTraining(), cluster,
                                opts, 1));
}

TEST(GoldenReports, ExploreDlrmAMoePretrain)
{
    ModelDesc desc = model_zoo::dlrmAMoe();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    checkGolden("explore_dlrm_a_moe_pretrain.txt",
                dumpExploration(desc, TaskSpec::preTraining(), cluster,
                                ExplorerOptions{}, 1));
}

TEST(GoldenReports, ServeEvaluateResponseBody)
{
    const std::string dir = MADMAX_CONFIG_DIR;
    JsonValue body;
    body.set("model", JsonValue::parseFile(dir + "/model_dlrm_a.json"));
    body.set("system",
             JsonValue::parseFile(dir + "/system_zionex.json"));
    body.set("task",
             JsonValue::parseFile(dir + "/task_pretrain_optimal.json"));

    EvalService service;
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/evaluate";
    req.version = "HTTP/1.1";
    req.body = body.dump(2);
    HttpResponse resp = service.handle(req);
    ASSERT_EQ(resp.status, 200);
    checkGolden("serve_evaluate_dlrm_a.txt", resp.body);
}

} // namespace madmax
