#include <gtest/gtest.h>

#include "core/layer_processor.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/units.hh"

namespace madmax
{

using namespace units;

namespace
{

ModelDesc
tinyModel()
{
    ModelDesc m;
    m.name = "tiny";
    m.globalBatchSize = 128 * 64; // 64 samples per device on ZionEX.
    m.contextLength = 1;
    m.computeDtype = DataType::TF32;
    m.graph.addLayer(std::make_unique<EmbeddingBagLayer>(
        "EMB", 100, 1000, 64, 8.0));
    m.graph.addLayer(std::make_unique<MlpLayer>(
        "MLP", LayerClass::BaseDense,
        std::vector<long>{1024, 2048, 1024}));
    return m;
}

} // namespace

TEST(LayerProcessor, ComputeBlockFormula)
{
    // §IV-B: t = FLOPs / (peak x utilization).
    ModelDesc m = tinyModel();
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    LayerProcessor proc(c, m);

    const Layer &mlp = m.graph.layer(1);
    double device_flops = mlp.forwardFlopsPerSample() * 64.0;
    double expected =
        device_flops / (c.device.peakFlopsTf32 * c.util.compute);
    EXPECT_NEAR(proc.forwardTime(mlp), expected, 1e-12);
    EXPECT_DOUBLE_EQ(proc.deviceForwardFlops(mlp), device_flops);
}

TEST(LayerProcessor, EmbeddingBagFormula)
{
    // §IV-B: t = lookup bytes / (HBM BW x utilization).
    ModelDesc m = tinyModel();
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    LayerProcessor proc(c, m);

    const Layer &emb = m.graph.layer(0);
    double bytes = emb.lookupBytesPerSample() * 64.0;
    double expected = bytes / (c.device.hbmBandwidth * c.util.hbm);
    EXPECT_NEAR(proc.forwardTime(emb), expected, 1e-15);
    EXPECT_EQ(proc.categoryOf(emb), EventCategory::EmbeddingLookup);
    EXPECT_EQ(proc.categoryOf(m.graph.layer(1)), EventCategory::Gemm);
}

TEST(LayerProcessor, BackwardMultipliers)
{
    ModelDesc m = tinyModel();
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    LayerProcessor proc(c, m);
    const Layer &mlp = m.graph.layer(1);
    const Layer &emb = m.graph.layer(0);

    double fwd = proc.forwardTime(mlp);
    // Trainable dense: 2x forward.
    EXPECT_NEAR(proc.backwardTime(mlp, TaskSpec::preTraining()),
                2.0 * fwd, 1e-15);
    // Frozen dense (embedding-only fine-tune): input grads only.
    EXPECT_NEAR(proc.backwardTime(
                    mlp, TaskSpec::fineTuning(FineTuneScope::EmbeddingOnly)),
                fwd, 1e-15);
    // Inference: none.
    EXPECT_DOUBLE_EQ(proc.backwardTime(mlp, TaskSpec::inference()), 0.0);

    // Trainable tables re-touch looked-up rows; frozen tables do no
    // backward work.
    EXPECT_NEAR(proc.backwardTime(emb, TaskSpec::preTraining()),
                proc.forwardTime(emb), 1e-15);
    EXPECT_DOUBLE_EQ(
        proc.backwardTime(emb,
                          TaskSpec::fineTuning(FineTuneScope::DenseOnly)),
        0.0);
}

TEST(LayerProcessor, DtypeSelectsPeak)
{
    // LayerProcessor holds a reference to its ModelDesc, so distinct
    // dtypes need distinct descriptions.
    ModelDesc m_tf32 = tinyModel();
    ModelDesc m_bf16 = tinyModel();
    m_bf16.computeDtype = DataType::BF16;
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    LayerProcessor tf32(c, m_tf32);
    LayerProcessor bf16(c, m_bf16);
    // BF16 peak is 2x TF32 on A100: half the time.
    EXPECT_NEAR(bf16.forwardTime(m_bf16.graph.layer(1)) /
                    tf32.forwardTime(m_tf32.graph.layer(1)),
                0.5, 1e-9);
}

TEST(LayerProcessor, SmUtilizationModelDeratesSmallBatches)
{
    ModelDesc m = tinyModel();
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    // Knee far above this layer's work: strong derating.
    LayerProcessor small(c, m, SmUtilizationModel(0.7, 1e15));
    LayerProcessor fixed(c, m);
    EXPECT_GT(small.forwardTime(m.graph.layer(1)),
              fixed.forwardTime(m.graph.layer(1)));

    // Knee far below: approaches the fixed-utilization time.
    LayerProcessor big(c, m, SmUtilizationModel(0.7, 1.0));
    EXPECT_NEAR(big.forwardTime(m.graph.layer(1)) /
                    fixed.forwardTime(m.graph.layer(1)),
                1.0, 1e-3);
}

TEST(LayerProcessor, WorkScalesWithBatchAndInverselyWithDevices)
{
    ModelDesc m = tinyModel();
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    LayerProcessor base(c, m);
    double t1 = base.forwardTime(m.graph.layer(1));

    ModelDesc doubled = m;
    doubled.globalBatchSize *= 2;
    LayerProcessor bigger(c, doubled);
    EXPECT_NEAR(bigger.forwardTime(doubled.graph.layer(1)) / t1, 2.0,
                1e-9);

    ClusterSpec half = c.withNumNodes(8);
    LayerProcessor fewer(half, m);
    EXPECT_NEAR(fewer.forwardTime(m.graph.layer(1)) / t1, 2.0, 1e-9);
}

TEST(LayerProcessor, DecodeStepIsSingleTokenAndMemoryBound)
{
    ModelDesc m = model_zoo::llama2_7b(512);
    ClusterSpec c = hw_zoo::llmTrainingSystem().withNumNodes(2);
    LayerProcessor lp(c, m);
    const Layer &attn = m.graph.layer(1);
    const Layer &ffn = m.graph.layer(2);
    ASSERT_EQ(attn.kind(), LayerKind::Attention);
    ASSERT_EQ(ffn.kind(), LayerKind::FeedForward);

    // Every non-decode task prices the classic whole-context forward.
    EXPECT_DOUBLE_EQ(lp.forwardTime(attn, TaskSpec::inference()),
                     lp.forwardTime(attn));
    EXPECT_DOUBLE_EQ(lp.forwardTime(attn, TaskSpec::prefill()),
                     lp.forwardTime(attn));
    EXPECT_DOUBLE_EQ(lp.forwardTime(attn, TaskSpec::preTraining()),
                     lp.forwardTime(attn));

    // A decode step emits one token, not ctx of them: it must be far
    // cheaper than the full forward but can never beat the HBM floor
    // of streaming the weights through the device.
    TaskSpec decode = TaskSpec::decode(512);
    const double step = lp.forwardTime(attn, decode);
    EXPECT_LT(step, lp.forwardTime(attn) / 10.0);
    EXPECT_GT(step, 0.0);

    // Per-token decode FLOPs: the GEMV against the weights plus
    // attention over the cache (2 FLOPs per cached element pair).
    const double h = 4096.0;
    EXPECT_DOUBLE_EQ(lp.decodeFlopsPerToken(attn, 512),
                     2.0 * attn.paramCount() + 4.0 * h * 512.0);
    EXPECT_DOUBLE_EQ(lp.decodeFlopsPerToken(ffn, 512),
                     2.0 * ffn.paramCount());

    // A longer cache means more bytes and FLOPs per step.
    TaskSpec longer = TaskSpec::decode(4096);
    EXPECT_GT(lp.forwardTime(attn, longer), step);

    // Embeddings are lookups: decode scales their traffic to one
    // token, so the step is ctx times cheaper.
    const Layer &emb = m.graph.layer(0);
    ASSERT_EQ(emb.kind(), LayerKind::TokenEmbedding);
    EXPECT_NEAR(lp.forwardTime(emb, decode) * 512.0,
                lp.forwardTime(emb), lp.forwardTime(emb) * 1e-9);
}

} // namespace madmax
