#include <gtest/gtest.h>

#include "core/memory_model.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace madmax
{

using namespace units;

TEST(MemoryModel, RejectsBadReserve)
{
    EXPECT_THROW(MemoryModel(MemoryModelOptions{1.0, true}), ConfigError);
    EXPECT_THROW(MemoryModel(MemoryModelOptions{-0.1, true}),
                 ConfigError);
}

TEST(MemoryModel, UsableCapacityAppliesReserve)
{
    MemoryModel m(MemoryModelOptions{0.30, true});
    MemoryFootprint fp = m.evaluate(
        model_zoo::dlrmA(), TaskSpec::preTraining(),
        ParallelPlan::fsdpBaseline(), hw_zoo::dlrmTrainingSystem());
    EXPECT_NEAR(fp.usableCapacity, gib(40) * 0.70, 1.0);
}

TEST(MemoryModel, DlrmShardedTablesDominate)
{
    // 793B fp32 params over 128 devices ~ 24.8 GB each.
    MemoryModel m;
    MemoryFootprint fp = m.evaluate(
        model_zoo::dlrmA(), TaskSpec::preTraining(),
        ParallelPlan::fsdpBaseline(), hw_zoo::dlrmTrainingSystem());
    EXPECT_NEAR(fp.paramBytes / gb(1), 24.8, 0.6);
    EXPECT_TRUE(fp.fits());
}

TEST(MemoryModel, DlrmDdpDenseOverflows40GB)
{
    // Insight 1 / Fig. 11: replicating dense params + grads +
    // optimizer states on top of the table shards exceeds usable HBM.
    MemoryModel m;
    ParallelPlan ddp;
    ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    MemoryFootprint fp =
        m.evaluate(model_zoo::dlrmA(), TaskSpec::preTraining(), ddp,
                   hw_zoo::dlrmTrainingSystem());
    EXPECT_FALSE(fp.fits());
    // The same plan fits for inference (Insight 5): params only.
    MemoryFootprint inf =
        m.evaluate(model_zoo::dlrmA(), TaskSpec::inference(), ddp,
                   hw_zoo::dlrmTrainingSystem());
    EXPECT_TRUE(inf.fits());
}

TEST(MemoryModel, TpShardingRestoresFit)
{
    MemoryModel m;
    ParallelPlan tp_ddp;
    tp_ddp.set(LayerClass::BaseDense,
               HierStrategy{Strategy::TP, Strategy::DDP});
    MemoryFootprint fp =
        m.evaluate(model_zoo::dlrmA(), TaskSpec::preTraining(), tp_ddp,
                   hw_zoo::dlrmTrainingSystem());
    EXPECT_TRUE(fp.fits());
}

TEST(MemoryModel, Gpt3IntraNodeShardingInsufficient)
{
    // Insight 2: (TP, DDP) on GPT-3 OOMs — 1/8 of 175B params plus
    // optimizer state cannot fit in 80 GB.
    MemoryModel m;
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    plan.set(LayerClass::Transformer,
             HierStrategy{Strategy::TP, Strategy::DDP});
    MemoryFootprint fp =
        m.evaluate(model_zoo::gpt3(), TaskSpec::preTraining(), plan,
                   hw_zoo::llmTrainingSystem());
    EXPECT_FALSE(fp.fits());

    // Global FSDP fits comfortably.
    MemoryFootprint fsdp = m.evaluate(
        model_zoo::gpt3(), TaskSpec::preTraining(),
        ParallelPlan::fsdpBaseline(), hw_zoo::llmTrainingSystem());
    EXPECT_TRUE(fsdp.fits());
}

TEST(MemoryModel, MixedPrecisionAddsMasterWeights)
{
    // bf16 params get an fp32 master copy in the optimizer.
    MemoryModel m;
    ModelDesc llm = model_zoo::llama65b();
    MemoryFootprint train = m.evaluate(
        llm, TaskSpec::preTraining(), ParallelPlan::fsdpBaseline(),
        hw_zoo::llmTrainingSystem());
    // Optimizer (8 + 4 master) dwarfs bf16 params (2) at equal
    // sharding.
    EXPECT_GT(train.optimizerBytes, 5.0 * train.paramBytes);
}

TEST(MemoryModel, FsdpTransientIsLargestGatheredLayer)
{
    MemoryModel m;
    ModelDesc llm = model_zoo::llama65b();
    MemoryFootprint fp = m.evaluate(
        llm, TaskSpec::preTraining(), ParallelPlan::fsdpBaseline(),
        hw_zoo::llmTrainingSystem());
    // Largest layer: SwiGLU FFN, 3 x 8192 x 22016 bf16 params.
    double largest = 3.0 * 8192 * 22016 * 2.0;
    EXPECT_NEAR(fp.transientBytes, largest, largest * 0.01);
}

TEST(MemoryModel, ActivationCheckpointingShrinksFootprint)
{
    MemoryModelOptions full;
    full.checkpointActivations = false;
    MemoryModelOptions ckpt;
    ckpt.checkpointActivations = true;
    ModelDesc llm = model_zoo::gpt3();
    MemoryFootprint f_full = MemoryModel(full).evaluate(
        llm, TaskSpec::preTraining(), ParallelPlan::fsdpBaseline(),
        hw_zoo::llmTrainingSystem());
    MemoryFootprint f_ckpt = MemoryModel(ckpt).evaluate(
        llm, TaskSpec::preTraining(), ParallelPlan::fsdpBaseline(),
        hw_zoo::llmTrainingSystem());
    EXPECT_GT(f_full.activationBytes, 3.0 * f_ckpt.activationBytes);
}

TEST(MemoryModel, InferenceUsesSmallWorkingSet)
{
    MemoryModel m;
    MemoryFootprint train = m.evaluate(
        model_zoo::dlrmA(), TaskSpec::preTraining(),
        ParallelPlan::fsdpBaseline(), hw_zoo::dlrmTrainingSystem());
    MemoryFootprint inf = m.evaluate(
        model_zoo::dlrmA(), TaskSpec::inference(),
        ParallelPlan::fsdpBaseline(), hw_zoo::dlrmTrainingSystem());
    EXPECT_LT(inf.activationBytes, train.activationBytes);
    EXPECT_DOUBLE_EQ(inf.gradBytes, 0.0);
    EXPECT_DOUBLE_EQ(inf.optimizerBytes, 0.0);
}

TEST(MemoryModel, MoreCapacityUnlocksPlans)
{
    // Fig. 19 mechanism: scaling HBM capacity turns OOM plans valid.
    MemoryModel m;
    ParallelPlan ddp;
    ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    ClusterSpec base = hw_zoo::dlrmTrainingSystem();
    EXPECT_FALSE(m.evaluate(model_zoo::dlrmA(), TaskSpec::preTraining(),
                            ddp, base)
                     .fits());
    EXPECT_TRUE(m.evaluate(model_zoo::dlrmA(), TaskSpec::preTraining(),
                           ddp, base.withHbmCapacityScale(10.0))
                    .fits());
}

TEST(MemoryModel, FootprintTotalSumsComponents)
{
    MemoryModel m;
    MemoryFootprint fp = m.evaluate(
        model_zoo::dlrmA(), TaskSpec::preTraining(),
        ParallelPlan::fsdpBaseline(), hw_zoo::dlrmTrainingSystem());
    EXPECT_NEAR(fp.total(),
                fp.paramBytes + fp.gradBytes + fp.optimizerBytes +
                    fp.activationBytes + fp.transientBytes,
                1.0);
}

TEST(MemoryModel, KvCacheGrowsWithContextAndRidesTheBatchSplit)
{
    MemoryModel m;
    ModelDesc desc = model_zoo::llama2_7b(512);
    ClusterSpec cluster = hw_zoo::llmTrainingSystem().withNumNodes(2);
    ParallelPlan plan = ParallelPlan::fsdpBaseline();

    // Batch-phase inference carries no cache: the legacy footprint is
    // untouched by the phase split.
    MemoryFootprint batch =
        m.evaluate(desc, TaskSpec::inference(), plan, cluster);
    EXPECT_DOUBLE_EQ(batch.kvCacheBytes, 0.0);

    // Prefill at the prompt length: 2 (K,V) x h x 2 B x 32 layers per
    // token, x 512 tokens, x the device's share of the batch.
    MemoryFootprint prefill =
        m.evaluate(desc, TaskSpec::prefill(), plan, cluster);
    const double batch_share = 256.0 / cluster.numDevices();
    EXPECT_DOUBLE_EQ(prefill.kvCacheBytes,
                     2.0 * 4096 * 2.0 * 32 * 512 * batch_share);
    EXPECT_NEAR(prefill.total() - prefill.kvCacheBytes, batch.total(),
                batch.total() * 0.05);

    // An explicit capacity budget (prompt + generated) scales the
    // cache linearly past the context length.
    TaskSpec capped = TaskSpec::decode(512);
    capped.kvCapacityTokens = 1024;
    MemoryFootprint decode = m.evaluate(desc, capped, plan, cluster);
    EXPECT_DOUBLE_EQ(decode.kvCacheBytes, 2.0 * prefill.kvCacheBytes);
    // total() includes the cache.
    EXPECT_GE(decode.total(), decode.kvCacheBytes);

    // A 1-byte (fp8) cache halves it.
    TaskSpec fp8 = capped;
    fp8.kvBytesPerElement = 1.0;
    EXPECT_DOUBLE_EQ(m.evaluate(desc, fp8, plan, cluster).kvCacheBytes,
                     decode.kvCacheBytes / 2.0);
}

TEST(MemoryModel, GroupedQueryAttentionShrinksTheCache)
{
    // LLaMA2-70B uses 8 KV heads against 64 query heads: its per-token
    // cache must be 8x smaller than a full-KV model of the same
    // hidden size would carry.
    MemoryModel m;
    ModelDesc desc = model_zoo::llama2_70b();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    MemoryFootprint fp = m.evaluate(desc, TaskSpec::prefill(),
                                    ParallelPlan::fsdpBaseline(),
                                    cluster);
    const auto &attn = static_cast<const AttentionLayer &>(
        desc.graph.layer(1));
    ASSERT_EQ(attn.kind(), LayerKind::Attention);
    EXPECT_DOUBLE_EQ(
        attn.kvBytesPerToken(2.0),
        2.0 * attn.kvHeads() *
            (8192.0 / static_cast<double>(attn.numHeads())) * 2.0);
    EXPECT_LT(attn.kvHeads(), attn.numHeads());
    EXPECT_GT(fp.kvCacheBytes, 0.0);
}

} // namespace madmax
