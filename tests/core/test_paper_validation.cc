/**
 * @file
 * End-to-end validation against the paper's published numbers
 * (Table I and the numbered Insights of §VI). Tolerances are looser
 * than unit-test tolerances: the paper's own model achieved 84.7-99.2%
 * accuracy against measurements, and our substrate re-derives every
 * constant from first principles.
 */

#include <gtest/gtest.h>

#include "core/perf_model.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "parallel/sharding.hh"

namespace madmax
{

namespace
{

ParallelPlan
dlrmOptimalPlan()
{
    // Fig. 11's throughput-optimal ((TP, DDP), (MP)).
    ParallelPlan p;
    p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    p.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    return p;
}

} // namespace

// Table I row 1-3: DLRM-A on the 128-GPU ZionEX system.
TEST(PaperValidation, TableI_DlrmA)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport r = model.evaluate(model_zoo::dlrmA(),
                                  TaskSpec::preTraining(),
                                  dlrmOptimalPlan());
    ASSERT_TRUE(r.valid);

    // Serialized iteration time: 67.40 ms measured, 65.30 ms paper
    // model. Accept within 15% of the measurement.
    EXPECT_NEAR(r.serializedTime * 1e3, 67.40, 67.40 * 0.15);

    // % communication exposed: 82.37% measured, 75.46% paper model.
    EXPECT_NEAR(r.exposedFraction(), 0.8237, 0.10);

    // Throughput: 1.2 MQPS measured, 1.21 paper model.
    EXPECT_NEAR(r.throughput() / 1e6, 1.2, 1.2 * 0.10);
}

// Table I row 4: DLRM-B. Table II's aggregate characteristics
// under-determine DLRM-B's real bottleneck (its published 3.4 MQPS
// implies per-iteration costs far above what 60M FLOPs/sample and
// 49.2 KB of lookups produce on this hardware), so we only check the
// direction our model can claim: at least the measured throughput.
TEST(PaperValidation, TableI_DlrmB_LowerBound)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    PerfReport r = model.evaluate(model_zoo::dlrmB(),
                                  TaskSpec::preTraining(),
                                  dlrmOptimalPlan());
    ASSERT_TRUE(r.valid);
    EXPECT_GE(r.throughput() / 1e6, 3.0);
}

// Table I rows 5-6: LLaMA-65/70B on 2048 A100-80GB.
TEST(PaperValidation, TableI_LlamaDaysToTrain)
{
    // Production LLaMA training ran the optimized (prefetching) FSDP
    // implementation (Fig. 9).
    PerfModel model(hw_zoo::llmTrainingSystem());
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    plan.fsdpPrefetch = true;
    PerfReport r = model.evaluate(model_zoo::llama65b(),
                                  TaskSpec::preTraining(), plan);
    ASSERT_TRUE(r.valid);

    // Days to train 1.4T tokens: 20.83 measured, 19.21 paper model.
    double days = 1.4e12 / r.tokensPerSecond() / 86400.0;
    EXPECT_NEAR(days, 20.83, 20.83 * 0.15);

    // Aggregate GPU-hours for 306k steps: 1,022,361 measured,
    // 863,397 paper model.
    double gpu_hours = 306000.0 * r.iterationTime / 3600.0 * 2048.0;
    EXPECT_NEAR(gpu_hours, 1022361.0, 1022361.0 * 0.25);
}

// Fig. 9: optimized FSDP with prefetching reaches ~93% predicted
// communication overlap on LLaMA pre-training (98% in production).
TEST(PaperValidation, Fig9_FsdpPrefetchOverlap)
{
    PerfModel model(hw_zoo::llmTrainingSystem());
    ParallelPlan prefetch = ParallelPlan::fsdpBaseline();
    prefetch.fsdpPrefetch = true;
    PerfReport r = model.evaluate(model_zoo::llama65b(),
                                  TaskSpec::preTraining(), prefetch);
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.overlapFraction(), 0.80);

    ParallelPlan plain = ParallelPlan::fsdpBaseline();
    plain.fsdpPrefetch = false;
    PerfReport r0 = model.evaluate(model_zoo::llama65b(),
                                   TaskSpec::preTraining(), plain);
    EXPECT_GT(r.overlapFraction(), r0.overlapFraction());
}

// Insight 1: DLRM dense-layer strategies span a wide throughput
// range; (TP, DDP) wins and plain DDP OOMs.
TEST(PaperValidation, Insight1_DlrmStrategySpread)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    ExplorationResult best =
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining());
    // The optimum shards dense layers within the node and replicates
    // across nodes — (TP, DDP) in the paper; (FSDP, DDP) ranks within
    // 1% under our collective model and may win the tie.
    HierStrategy dense = best.plan.strategyFor(LayerClass::BaseDense);
    EXPECT_TRUE(dense.intra == Strategy::TP ||
                dense.intra == Strategy::FSDP)
        << dense.toString();
    EXPECT_EQ(dense.inter, Strategy::DDP) << dense.toString();

    PerfReport baseline =
        explorer.baseline(model_zoo::dlrmA(), TaskSpec::preTraining());
    double speedup = best.report.throughput() / baseline.throughput();
    // Paper: 1.14x over FSDP. Accept 1.05-1.45.
    EXPECT_GT(speedup, 1.05);
    EXPECT_LT(speedup, 1.45);

    // Global TP communicates partial sums for the whole batch over
    // the slow fabric: a large slowdown (paper: 0.19x).
    ParallelPlan tp_global;
    tp_global.set(LayerClass::BaseDense, HierStrategy{Strategy::TP});
    PerfReport worst = model.evaluate(model_zoo::dlrmA(),
                                      TaskSpec::preTraining(), tp_global);
    ASSERT_TRUE(worst.valid);
    EXPECT_LT(worst.throughput() / baseline.throughput(), 0.5);

    // Plain DDP on dense layers OOMs (gray bar in Fig. 11).
    ParallelPlan ddp;
    ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    EXPECT_FALSE(model
                     .evaluate(model_zoo::dlrmA(),
                               TaskSpec::preTraining(), ddp)
                     .valid);
}

// Insight 2: GPT-3 word embeddings are replicable, but intra-node
// sharding of transformer layers is insufficient (OOM), keeping FSDP
// competitive.
TEST(PaperValidation, Insight2_Gpt3MemoryConstraints)
{
    PerfModel model(hw_zoo::llmTrainingSystem());
    ParallelPlan tp_ddp = ParallelPlan::fsdpBaseline();
    tp_ddp.set(LayerClass::Transformer,
               HierStrategy{Strategy::TP, Strategy::DDP});
    EXPECT_FALSE(model
                     .evaluate(model_zoo::gpt3(), TaskSpec::preTraining(),
                               tp_ddp)
                     .valid);

    // Word-embedding DDP replication is viable.
    ParallelPlan emb_ddp = ParallelPlan::fsdpBaseline();
    emb_ddp.set(LayerClass::DenseEmbedding, HierStrategy{Strategy::DDP});
    EXPECT_TRUE(model
                    .evaluate(model_zoo::gpt3(), TaskSpec::preTraining(),
                              emb_ddp)
                    .valid);
}

// Insight 3: hierarchical strategy order matters. For GPT-3,
// inter-node TP moves giant activations over the slow fabric.
TEST(PaperValidation, Insight3_OrderingMatters)
{
    PerfModel model(hw_zoo::llmTrainingSystem());
    PerfReport fsdp = model.evaluate(model_zoo::gpt3(),
                                     TaskSpec::preTraining(),
                                     ParallelPlan::fsdpBaseline());
    ParallelPlan ddp_tp = ParallelPlan::fsdpBaseline();
    ddp_tp.set(LayerClass::Transformer,
               HierStrategy{Strategy::DDP, Strategy::TP});
    PerfReport slow = model.evaluate(model_zoo::gpt3(),
                                     TaskSpec::preTraining(), ddp_tp);
    ASSERT_TRUE(slow.valid);
    // Paper: 0.18x. Accept any slowdown below 0.5x.
    EXPECT_LT(slow.throughput() / fsdp.throughput(), 0.5);

    // Memory footprints differ by order (16 nodes x 8 devices).
    ClusterSpec zion = hw_zoo::dlrmTrainingSystem();
    ShardingInfo tp_ddp_sh =
        shardingFor(HierStrategy{Strategy::TP, Strategy::DDP}, zion);
    ShardingInfo ddp_tp_sh =
        shardingFor(HierStrategy{Strategy::DDP, Strategy::TP}, zion);
    EXPECT_LT(ddp_tp_sh.paramFraction, tp_ddp_sh.paramFraction);
}

// Insight 8: H100 beats A100, and the SuperPOD's inter-node fabric
// upgrade gives a further large win for All2All-bound DLRM training
// (paper: 1.82x H100 -> SuperPOD).
TEST(PaperValidation, Insight8_Gpu_Generations)
{
    TaskSpec task = TaskSpec::preTraining();
    ModelDesc m = model_zoo::dlrmA();

    PerfModel model_a100(hw_zoo::dlrmTrainingSystem());
    PerfModel model_h100(hw_zoo::h100System());
    PerfModel model_pod(hw_zoo::h100SuperPodSystem());

    double t_a100 =
        StrategyExplorer(model_a100).best(m, task).report.throughput();
    double t_h100 =
        StrategyExplorer(model_h100).best(m, task).report.throughput();
    double t_pod =
        StrategyExplorer(model_pod).best(m, task).report.throughput();

    EXPECT_GT(t_h100, t_a100);
    // SuperPOD fabric accelerates the blocking All2All directly.
    double pod_gain = t_pod / t_h100;
    EXPECT_GT(pod_gain, 1.3);
    EXPECT_LT(pod_gain, 2.6);
}

// Insight 10: improving all hardware axes concurrently by 10x yields
// super-linear gains relative to the best single-axis improvement.
TEST(PaperValidation, Insight10_JointScalingBeatsIndividual)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    TaskSpec task = TaskSpec::preTraining();
    ModelDesc m = model_zoo::dlrmA();
    double base = explorer.best(m, task).report.throughput();

    double best_single = 0.0;
    for (auto factory :
         {&ClusterSpec::withComputeScale, &ClusterSpec::withHbmCapacityScale,
          &ClusterSpec::withHbmBandwidthScale,
          &ClusterSpec::withIntraBandwidthScale,
          &ClusterSpec::withInterBandwidthScale}) {
        ClusterSpec scaled =
            (hw_zoo::dlrmTrainingSystem().*factory)(10.0);
        PerfModel pm(scaled);
        double t = StrategyExplorer(pm).best(m, task).report.throughput();
        best_single = std::max(best_single, t / base);
    }

    ClusterSpec all = hw_zoo::dlrmTrainingSystem()
                          .withComputeScale(10.0)
                          .withHbmCapacityScale(10.0)
                          .withHbmBandwidthScale(10.0)
                          .withIntraBandwidthScale(10.0)
                          .withInterBandwidthScale(10.0);
    PerfModel pm_all(all);
    double t_all =
        StrategyExplorer(pm_all).best(m, task).report.throughput() / base;

    // Single-axis: sub-linear (< 10x). Joint: dramatically better
    // than any single axis.
    EXPECT_LT(best_single, 10.0);
    EXPECT_GT(t_all, best_single * 1.5);
}

} // namespace madmax
