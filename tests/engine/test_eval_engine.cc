/**
 * @file
 * EvalEngine tests: determinism across thread counts, memoization
 * correctness (cached report == fresh report), feasibility-pruning
 * accounting, canonical cache keys, and mixed multi-model batches.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/strategy_explorer.hh"
#include "engine/eval_engine.hh"
#include "fleet/fleet_sim.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/** Field-by-field equality on everything the benches consume. */
void
expectReportsEqual(const PerfReport &a, const PerfReport &b)
{
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.modelName, b.modelName);
    EXPECT_EQ(a.taskName, b.taskName);
    EXPECT_EQ(a.plan.toString(), b.plan.toString());
    EXPECT_DOUBLE_EQ(a.iterationTime, b.iterationTime);
    EXPECT_DOUBLE_EQ(a.serializedTime, b.serializedTime);
    EXPECT_DOUBLE_EQ(a.computeTime, b.computeTime);
    EXPECT_DOUBLE_EQ(a.commTime, b.commTime);
    EXPECT_DOUBLE_EQ(a.exposedCommTime, b.exposedCommTime);
    EXPECT_DOUBLE_EQ(a.memory.total(), b.memory.total());
    EXPECT_EQ(a.serializedBreakdown.size(), b.serializedBreakdown.size());
}

} // namespace

TEST(EvalEngine, ExploreDeterministicAcrossThreadCounts)
{
    // The acceptance property: explore() with 1 thread and N threads
    // yields identical ranked results, bit for bit.
    PerfModel model(hw_zoo::llmTrainingSystem());
    ModelDesc gpt3 = model_zoo::gpt3();

    EvalEngineOptions serial_opts;
    serial_opts.jobs = 1;
    EvalEngine serial(serial_opts);

    EvalEngineOptions pooled_opts;
    pooled_opts.jobs = 4;
    EvalEngine pooled(pooled_opts);

    ExplorerOptions opts;
    opts.explorePrefetch = true;
    Exploration a = StrategyExplorer(model, &serial)
                        .explore(gpt3, TaskSpec::preTraining(), opts);
    Exploration b = StrategyExplorer(model, &pooled)
                        .explore(gpt3, TaskSpec::preTraining(), opts);

    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].plan.toString(),
                  b.results[i].plan.toString())
            << "rank " << i;
        EXPECT_DOUBLE_EQ(a.results[i].report.throughput(),
                         b.results[i].report.throughput())
            << "rank " << i;
    }
    EXPECT_EQ(a.stats.requests(), b.stats.requests());
    EXPECT_EQ(a.stats.pruned, b.stats.pruned);
}

TEST(EvalEngine, MemoizedReportEqualsFreshReport)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ModelDesc dlrm = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});

    EvalEngine engine;
    EvalStats first, second;
    PerfReport fresh = engine.evaluateOne(model, dlrm, task, plan,
                                          &first);
    PerfReport cached = engine.evaluateOne(model, dlrm, task, plan,
                                           &second);

    EXPECT_EQ(first.evaluations, 1);
    EXPECT_EQ(first.cacheHits, 0);
    EXPECT_EQ(second.evaluations, 0);
    EXPECT_EQ(second.cacheHits, 1);
    expectReportsEqual(fresh, cached);

    // And both match a direct, engine-free evaluation.
    expectReportsEqual(fresh, model.evaluate(dlrm, task, plan));
}

TEST(EvalEngine, PruningCountsOomPlans)
{
    // Every invalid result in a keepInvalid exploration must have
    // been resolved by the memory pre-pass, not a full evaluation.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    EvalEngine engine;
    StrategyExplorer explorer(model, &engine);
    Exploration ex =
        explorer.explore(model_zoo::dlrmA(), TaskSpec::preTraining());

    long invalid = 0;
    for (const ExplorationResult &r : ex.results)
        invalid += r.report.valid ? 0 : 1;
    ASSERT_GT(invalid, 0) << "fixture needs at least one OOM plan";
    EXPECT_EQ(ex.stats.pruned, invalid);
    EXPECT_EQ(ex.stats.evaluations,
              static_cast<long>(ex.results.size()) - invalid);
    EXPECT_EQ(ex.stats.cacheHits, 0);
    EXPECT_GT(ex.stats.wallSeconds, 0.0);
}

TEST(EvalEngine, PruningDisabledMatchesPrunedResults)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    EvalEngineOptions no_prune;
    no_prune.pruneInfeasible = false;
    EvalEngine a;
    EvalEngine b(no_prune);
    Exploration pruned = StrategyExplorer(model, &a).explore(
        model_zoo::dlrmA(), TaskSpec::preTraining());
    Exploration full = StrategyExplorer(model, &b).explore(
        model_zoo::dlrmA(), TaskSpec::preTraining());

    ASSERT_EQ(pruned.results.size(), full.results.size());
    for (size_t i = 0; i < pruned.results.size(); ++i) {
        expectReportsEqual(pruned.results[i].report,
                           full.results[i].report);
    }
    EXPECT_EQ(full.stats.pruned, 0);
    EXPECT_EQ(full.stats.evaluations, pruned.stats.requests());
}

TEST(EvalEngine, CanonicalKeyIgnoresAbsentClasses)
{
    // GPT-3 has no sparse embeddings: two plans differing only in the
    // SparseEmbedding strategy are the same point and must collide.
    PerfModel model(hw_zoo::llmTrainingSystem());
    ModelDesc gpt3 = model_zoo::gpt3();
    TaskSpec task = TaskSpec::preTraining();

    ParallelPlan a = ParallelPlan::fsdpBaseline();
    ParallelPlan b = ParallelPlan::fsdpBaseline();
    b.set(LayerClass::SparseEmbedding,
          HierStrategy{Strategy::MP, Strategy::DDP});

    EvalEngine engine;
    EvalStats stats;
    engine.evaluateOne(model, gpt3, task, a, &stats);
    PerfReport hit = engine.evaluateOne(model, gpt3, task, b, &stats);
    EXPECT_EQ(stats.evaluations, 1);
    EXPECT_EQ(stats.cacheHits, 1);
    // The served report carries the *requested* plan, not the cached
    // insertion's plan.
    EXPECT_EQ(hit.plan.toString(), b.toString());
}

TEST(EvalEngine, CacheKeyIsGroupPrefixPlusPlanSuffix)
{
    // evaluateAll assembles keys as <group prefix> + <plan suffix>,
    // computing the prefix once per (model, desc, task) batch group.
    // Two requests of one group must therefore agree on everything up
    // to and including the final '|'; only the plan suffix differs.
    PerfModel model(hw_zoo::llmTrainingSystem());
    ModelDesc gpt3 = model_zoo::gpt3();
    TaskSpec task = TaskSpec::preTraining();

    PlanRequest a{&model, &gpt3, &task, ParallelPlan::fsdpBaseline()};
    ParallelPlan tp;
    tp.set(LayerClass::Transformer,
           HierStrategy{Strategy::TP, Strategy::DDP});
    PlanRequest b{&model, &gpt3, &task, tp};

    std::string ka = EvalEngine::cacheKey(a);
    std::string kb = EvalEngine::cacheKey(b);
    size_t cut_a = ka.rfind('|');
    size_t cut_b = kb.rfind('|');
    ASSERT_NE(cut_a, std::string::npos);
    EXPECT_EQ(ka.substr(0, cut_a), kb.substr(0, cut_b))
        << "same group, same prefix";
    EXPECT_NE(ka.substr(cut_a), kb.substr(cut_b))
        << "different plans, different suffix";

    // A different task lands in a different group: the prefixes must
    // already diverge.
    TaskSpec inf = TaskSpec::inference();
    PlanRequest c{&model, &gpt3, &inf, ParallelPlan::fsdpBaseline()};
    std::string kc = EvalEngine::cacheKey(c);
    EXPECT_NE(ka.substr(0, cut_a), kc.substr(0, kc.rfind('|')));
}

TEST(EvalEngine, DistinguishesModelsTasksAndClusters)
{
    ModelDesc gpt3 = model_zoo::gpt3();
    ModelDesc llama = model_zoo::llama65b();
    PerfModel llm(hw_zoo::llmTrainingSystem());
    PerfModel scaled(
        hw_zoo::llmTrainingSystem().withComputeScale(2.0));
    ParallelPlan plan = ParallelPlan::fsdpBaseline();
    TaskSpec pre = TaskSpec::preTraining();
    TaskSpec inf = TaskSpec::inference();

    EvalEngine engine;
    EvalStats stats;
    engine.evaluateOne(llm, gpt3, pre, plan, &stats);
    engine.evaluateOne(llm, llama, pre, plan, &stats);   // New model.
    engine.evaluateOne(llm, gpt3, inf, plan, &stats);    // New task.
    engine.evaluateOne(scaled, gpt3, pre, plan, &stats); // New cluster.
    EXPECT_EQ(stats.evaluations, 4);
    EXPECT_EQ(stats.cacheHits, 0);
}

TEST(EvalEngine, MixedBatchMatchesDirectEvaluation)
{
    // Fleet-style batch: different models on different clusters in
    // one evaluateAll call.
    PerfModel dlrm_model(hw_zoo::dlrmTrainingSystem());
    PerfModel llm_model(hw_zoo::llmTrainingSystem());
    ModelDesc dlrm = model_zoo::dlrmA();
    ModelDesc gpt3 = model_zoo::gpt3();
    TaskSpec task = TaskSpec::preTraining();
    ParallelPlan dlrm_plan;
    dlrm_plan.set(LayerClass::BaseDense,
                  HierStrategy{Strategy::TP, Strategy::DDP});
    ParallelPlan llm_plan = ParallelPlan::fsdpBaseline();

    std::vector<PlanRequest> reqs(2);
    reqs[0].model = &dlrm_model;
    reqs[0].desc = &dlrm;
    reqs[0].task = &task;
    reqs[0].plan = dlrm_plan;
    reqs[1].model = &llm_model;
    reqs[1].desc = &gpt3;
    reqs[1].task = &task;
    reqs[1].plan = llm_plan;

    EvalEngineOptions eo;
    eo.jobs = 2;
    EvalEngine engine(eo);
    std::vector<PerfReport> out = engine.evaluateAll(reqs);
    ASSERT_EQ(out.size(), 2u);
    expectReportsEqual(out[0],
                       dlrm_model.evaluate(dlrm, task, dlrm_plan));
    expectReportsEqual(out[1],
                       llm_model.evaluate(gpt3, task, llm_plan));
}

TEST(EvalEngine, DuplicateRequestsInOneBatchCollapse)
{
    PerfModel model(hw_zoo::llmTrainingSystem());
    ModelDesc gpt3 = model_zoo::gpt3();
    TaskSpec task = TaskSpec::preTraining();

    std::vector<PlanRequest> reqs(3);
    for (PlanRequest &r : reqs) {
        r.model = &model;
        r.desc = &gpt3;
        r.task = &task;
        r.plan = ParallelPlan::fsdpBaseline();
    }
    EvalEngine engine;
    EvalStats stats;
    std::vector<PerfReport> out = engine.evaluateAll(reqs, &stats);
    EXPECT_EQ(stats.evaluations, 1);
    EXPECT_EQ(stats.cacheHits, 2);
    expectReportsEqual(out[0], out[1]);
    expectReportsEqual(out[0], out[2]);
}

TEST(EvalEngine, CacheCapacityEvicts)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ModelDesc dlrm = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();

    EvalEngineOptions eo;
    eo.cacheCapacity = 2;
    EvalEngine engine(eo);
    for (HierStrategy hs :
         StrategyExplorer::candidates(LayerClass::BaseDense)) {
        ParallelPlan p;
        p.set(LayerClass::BaseDense, hs);
        engine.evaluateOne(model, dlrm, task, p);
    }
    EXPECT_LE(engine.cacheSize(), 2u);
}

TEST(EvalEngine, FleetRunDeterministicAcrossThreadCounts)
{
    EvalEngineOptions pooled_opts;
    pooled_opts.jobs = 4;
    EvalEngine serial;
    EvalEngine pooled(pooled_opts);
    FleetSimulator fleet = FleetSimulator::representativeFleet();
    FleetReport a = fleet.run(&serial);
    FleetReport b = fleet.run(&pooled);

    EXPECT_DOUBLE_EQ(a.overall.compute, b.overall.compute);
    EXPECT_DOUBLE_EQ(a.overall.exposedComm, b.overall.exposedComm);
    EXPECT_DOUBLE_EQ(a.overall.idle, b.overall.idle);
    ASSERT_EQ(a.byFamily.size(), b.byFamily.size());
    for (const auto &[family, breakdown] : a.byFamily) {
        EXPECT_DOUBLE_EQ(breakdown.compute,
                         b.byFamily.at(family).compute)
            << family;
    }
}

TEST(EvalEngine, BestStatsCoverWholeSearch)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    EvalEngine engine;
    StrategyExplorer explorer(model, &engine);
    ExplorationResult best =
        explorer.best(model_zoo::dlrmA(), TaskSpec::preTraining());
    // DLRM-A spans 2 x 8 = 16 plans; best() explores them all.
    EXPECT_EQ(best.stats.requests(), 16);
    EXPECT_GT(best.stats.pruned, 0);
    EXPECT_GT(best.stats.wallSeconds, 0.0);
}

TEST(EvalEngine, RejectsNegativeJobs)
{
    EvalEngineOptions eo;
    eo.jobs = -1;
    EXPECT_THROW(EvalEngine{eo}, ConfigError);
}

TEST(EvalEngine, InjectedFailureIsIsolatedToItsSlot)
{
    // jobs=1 makes the evaluation order the submission order, so an
    // nth-trigger fault lands on a known slot.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ModelDesc dlrm = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();

    // All three plans are memory-feasible on dlrmA (DDP/DDP is not —
    // it would be verdict-pruned and never occupy an evaluation
    // slot, shifting the nth trigger).
    ParallelPlan a, b, c;
    a.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    b.set(LayerClass::BaseDense,
          HierStrategy{Strategy::DDP, Strategy::TP});
    c.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::TP});

    std::vector<PlanRequest> requests;
    for (const ParallelPlan *plan : {&a, &b, &c})
        requests.push_back(PlanRequest{&model, &dlrm, &task, *plan});

    EvalEngineOptions eo;
    eo.jobs = 1;
    EvalEngine engine(eo);
    EvalStats stats;
    std::vector<PerfReport> results;
    {
        FaultScope scope("engine.eval=throw@nth:2");
        results = engine.evaluateAll(requests, &stats);
    }

    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].failed());
    ASSERT_TRUE(results[1].failed());
    EXPECT_FALSE(results[2].failed());

    // The failure report keeps its identity fields and carries the
    // taxonomy kind for an unexpected exception.
    EXPECT_EQ(results[1].errorKind, EvalErrorKind::Internal);
    EXPECT_FALSE(results[1].errorMessage.empty());
    EXPECT_EQ(results[1].modelName, dlrm.name);
    EXPECT_FALSE(results[1].valid);

    // Failed requests still occupy evaluation slots; the invariant
    // deltaEvals + fullEvals == evaluations holds with failures.
    EXPECT_EQ(stats.evaluations, 3);
    EXPECT_EQ(stats.failed, 1);
    EXPECT_EQ(stats.deltaEvals + stats.fullEvals, stats.evaluations);

    // Healthy slots match an engine-free evaluation bit for bit.
    expectReportsEqual(results[0], model.evaluate(dlrm, task, a));
    expectReportsEqual(results[2], model.evaluate(dlrm, task, c));
}

TEST(EvalEngine, FailedReportsAreNeverMemoized)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ModelDesc dlrm = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});

    EvalEngineOptions eo;
    eo.jobs = 1;
    EvalEngine engine(eo);

    EvalStats first;
    PerfReport failed;
    {
        FaultScope scope("engine.eval=throw@nth:1");
        failed = engine.evaluateOne(model, dlrm, task, plan, &first);
    }
    ASSERT_TRUE(failed.failed());
    EXPECT_EQ(first.failed, 1);

    // The retry must re-evaluate (no poisoned cache entry) and
    // succeed now that the fault is disarmed.
    EvalStats second;
    PerfReport retried =
        engine.evaluateOne(model, dlrm, task, plan, &second);
    EXPECT_FALSE(retried.failed());
    EXPECT_EQ(second.cacheHits, 0);
    EXPECT_EQ(second.evaluations, 1);
    EXPECT_EQ(second.failed, 0);
    expectReportsEqual(retried, model.evaluate(dlrm, task, plan));

    // And the healthy report memoizes as usual.
    EvalStats third;
    engine.evaluateOne(model, dlrm, task, plan, &third);
    EXPECT_EQ(third.cacheHits, 1);
}

TEST(EvalEngine, BadAllocMapsToResourceKind)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ModelDesc dlrm = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});

    EvalEngineOptions eo;
    eo.jobs = 1;
    EvalEngine engine(eo);
    FaultScope scope("engine.eval=badalloc");
    PerfReport report = engine.evaluateOne(model, dlrm, task, plan);
    ASSERT_TRUE(report.failed());
    EXPECT_EQ(report.errorKind, EvalErrorKind::Resource);
}

} // namespace madmax
