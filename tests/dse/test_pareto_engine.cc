/**
 * @file
 * ParetoEngine tests: the multi-objective frontier contract (every
 * returned point non-dominated, exhaustive ⊇ guided), the
 * cost-to-quality acceptance bar for the guided searches (>= 95% of
 * the exhaustive optimum at <= 25% of its evaluations on GPT-3
 * pre-training), consumer parity (bestPerHw == StrategyExplorer::
 * best, Fig. 1 table byte-identical), determinism across engine
 * thread counts, and golden JSON snapshots of the `madmax pareto
 * --format json` / `/v1/pareto` rendering.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "../golden_check.hh"
#include "core/strategy_explorer.hh"
#include "dse/pareto.hh"
#include "dse/pareto_engine.hh"
#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"
#include "util/table.hh"

namespace madmax
{

namespace
{

using testing::checkGolden;

/** The Fig. 1 configuration: DLRM-A pre-training over the cloud
 *  instance catalog. */
struct CloudConfig
{
    ModelDesc desc = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    std::vector<HardwarePoint> hw = cloudHardwareCatalog(16);
};

/** GPT-3 pre-training over a node-count sweep of the LLM training
 *  system — the acceptance-criteria joint space. */
struct Gpt3Config
{
    ModelDesc desc = model_zoo::gpt3();
    TaskSpec task = TaskSpec::preTraining();
    std::vector<HardwarePoint> hw = nodeCountSweep(
        hw_zoo::llmTrainingSystem(), {16, 32, 48, 64, 96, 128, 192, 256});
};

ParetoPointNd
objectivesOf(const ParetoCandidate &c)
{
    return ParetoPointNd{{c.objectives.throughput,
                          c.objectives.perfPerTco,
                          c.objectives.memHeadroomBytes},
                        0};
}

double
bestThroughput(const ParetoFrontier &frontier)
{
    double best = 0.0;
    for (const ParetoCandidate &c : frontier.points)
        best = std::max(best, c.objectives.throughput);
    return best;
}

std::string
objectiveKey(const ParetoCandidate &c)
{
    return strfmt("%.17g|%.17g|%.17g", c.objectives.throughput,
                  c.objectives.perfPerTco,
                  c.objectives.memHeadroomBytes);
}

} // namespace

TEST(ParetoEngineTest, RejectsEmptyCatalogAndBadSweeps)
{
    EXPECT_THROW(ParetoEngine({}), ConfigError);
    EXPECT_THROW(nodeCountSweep(hw_zoo::dlrmTrainingSystem(), {}),
                 ConfigError);
    EXPECT_THROW(nodeCountSweep(hw_zoo::dlrmTrainingSystem(), {0}),
                 ConfigError);
}

TEST(ParetoEngineTest, UnknownStrategyThrows)
{
    CloudConfig cfg;
    ParetoEngine engine(cfg.hw);
    ParetoOptions opts;
    opts.strategy = "brute-force";
    EXPECT_THROW(engine.explore(cfg.desc, cfg.task, opts), ConfigError);
}

// The frontier contract: every point any strategy returns is
// non-dominated among everything that strategy visited, and the
// frontier carries no duplicate objective vectors (ISSUE 5 property
// test, DLRM-A and GPT-3 configs).
template <typename Config>
void
frontierIsNonDominated()
{
    Config cfg;
    for (const std::string &name : searchStrategyNames()) {
        ParetoEngine engine(cfg.hw);
        ParetoOptions opts;
        opts.strategy = name;
        ParetoFrontier f = engine.explore(cfg.desc, cfg.task, opts);
        ASSERT_FALSE(f.points.empty()) << name;

        std::set<std::string> seen;
        for (const ParetoCandidate &p : f.points) {
            EXPECT_TRUE(p.report.valid) << name;
            EXPECT_TRUE(seen.insert(objectiveKey(p)).second)
                << name << ": duplicate frontier objectives";
            for (const ParetoCandidate &other : f.candidates) {
                if (!other.report.valid)
                    continue;
                EXPECT_FALSE(
                    dominates(objectivesOf(other), objectivesOf(p)))
                    << name << ": frontier point dominated by "
                    << other.plan.toString() << " on hw "
                    << other.hwIndex;
            }
        }
    }
}

TEST(ParetoFrontierProperty, NonDominatedOnDlrmACloud)
{
    frontierIsNonDominated<CloudConfig>();
}

TEST(ParetoFrontierProperty, NonDominatedOnGpt3NodeSweep)
{
    frontierIsNonDominated<Gpt3Config>();
}

// Exhaustive's output is a superset of every guided strategy's
// frontier, in the two senses that are structurally guaranteed:
// (1) every guided frontier point exists among exhaustive's visited
// candidates with bitwise-identical objectives (guided searches only
// ever visit points of the same joint space through the same
// evaluation path), and (2) the exhaustive frontier *covers* each
// guided frontier point — the point is either on it, or dominated by
// one of its points (exhaustive's frontier is the true frontier of
// the whole space, so adding guided visits cannot extend it).
template <typename Config>
void
exhaustiveIsSuperset()
{
    Config cfg;
    ParetoEngine exhaustive(cfg.hw);
    ParetoFrontier full = exhaustive.explore(cfg.desc, cfg.task);
    std::set<std::string> fullCandidateKeys;
    for (const ParetoCandidate &p : full.candidates) {
        if (p.report.valid)
            fullCandidateKeys.insert(objectiveKey(p));
    }
    std::set<std::string> fullFrontierKeys;
    for (const ParetoCandidate &p : full.points)
        fullFrontierKeys.insert(objectiveKey(p));

    for (const std::string &name : searchStrategyNames()) {
        if (name == "exhaustive")
            continue;
        ParetoEngine engine(cfg.hw);
        ParetoOptions opts;
        opts.strategy = name;
        ParetoFrontier guided =
            engine.explore(cfg.desc, cfg.task, opts);
        for (const ParetoCandidate &p : guided.points) {
            EXPECT_TRUE(fullCandidateKeys.count(objectiveKey(p)))
                << name << ": frontier point " << p.plan.toString()
                << " on hw " << p.hwIndex
                << " was never visited by exhaustive search";
            bool covered = fullFrontierKeys.count(objectiveKey(p)) > 0;
            for (const ParetoCandidate &f : full.points) {
                if (covered)
                    break;
                covered = dominates(objectivesOf(f), objectivesOf(p));
            }
            EXPECT_TRUE(covered)
                << name << ": frontier point " << p.plan.toString()
                << " on hw " << p.hwIndex
                << " is neither on nor dominated by the exhaustive "
                   "frontier";
        }
    }
}

TEST(ParetoFrontierProperty, ExhaustiveSupersetOnDlrmACloud)
{
    exhaustiveIsSuperset<CloudConfig>();
}

TEST(ParetoFrontierProperty, ExhaustiveSupersetOnGpt3NodeSweep)
{
    exhaustiveIsSuperset<Gpt3Config>();
}

// ISSUE 5 acceptance: on GPT-3 pre-training, annealing and genetic
// each reach >= 95% of the exhaustive frontier's best throughput
// point using <= 25% of its EvalStats.evaluations.
TEST(ParetoAcceptance, GuidedReach95PercentAt25PercentCostOnGpt3)
{
    Gpt3Config cfg;
    ParetoEngine exhaustive(cfg.hw);
    ParetoFrontier full = exhaustive.explore(cfg.desc, cfg.task);
    const long fullEvals = full.stats.evaluations;
    const double fullBest = bestThroughput(full);
    ASSERT_GT(fullEvals, 0);
    ASSERT_GT(fullBest, 0.0);

    for (const char *name : {"annealing", "genetic"}) {
        ParetoEngine engine(cfg.hw);
        ParetoOptions opts;
        opts.strategy = name;
        opts.search.maxEvaluations = fullEvals / 4;
        ParetoFrontier guided =
            engine.explore(cfg.desc, cfg.task, opts);
        EXPECT_LE(guided.stats.evaluations, fullEvals / 4) << name;
        EXPECT_GE(bestThroughput(guided), 0.95 * fullBest) << name;
    }
}

// The same bar on the Fig. 1 joint space. Genetic meets the 95%
// criterion here too; annealing gets a looser bound on this heavily
// OOM-pruned space (50 of 96 joint points are infeasible), where a
// quarter-budget random walk cannot reliably cross between the few
// feasible basins.
TEST(ParetoAcceptance, GuidedQualityOnDlrmACloud)
{
    CloudConfig cfg;
    ParetoEngine exhaustive(cfg.hw);
    ParetoFrontier full = exhaustive.explore(cfg.desc, cfg.task);
    const long fullEvals = full.stats.evaluations;
    const double fullBest = bestThroughput(full);

    ParetoEngine genetic(cfg.hw);
    ParetoOptions gopts;
    gopts.strategy = "genetic";
    gopts.search.maxEvaluations = fullEvals / 4;
    ParetoFrontier g = genetic.explore(cfg.desc, cfg.task, gopts);
    EXPECT_LE(g.stats.evaluations, fullEvals / 4);
    EXPECT_GE(bestThroughput(g), 0.95 * fullBest);

    ParetoEngine annealing(cfg.hw);
    ParetoOptions aopts;
    aopts.strategy = "annealing";
    aopts.search.maxEvaluations = fullEvals / 4;
    ParetoFrontier a = annealing.explore(cfg.desc, cfg.task, aopts);
    EXPECT_LE(a.stats.evaluations, fullEvals / 4);
    EXPECT_GE(bestThroughput(a), 0.75 * fullBest);
}

TEST(ParetoEngineTest, BudgetCeilingCoversBaselines)
{
    CloudConfig cfg;
    for (const char *name : {"annealing", "genetic"}) {
        ParetoEngine engine(cfg.hw);
        ParetoOptions opts;
        opts.strategy = name;
        opts.search.maxEvaluations = 4; // Below the 6-point catalog.
        ParetoFrontier f = engine.explore(cfg.desc, cfg.task, opts);
        EXPECT_LE(f.stats.evaluations, 4) << name;
        EXPECT_LE(f.baselines.size(), 4u) << name;
    }
}

TEST(ParetoEngineTest, BestPerHwMatchesStrategyExplorer)
{
    CloudConfig cfg;
    EvalEngine shared;
    ParetoEngine engine(cfg.hw, &shared);
    ParetoFrontier f = engine.explore(cfg.desc, cfg.task);

    std::set<size_t> covered;
    for (const ParetoCandidate &c : f.bestPerHw)
        covered.insert(c.hwIndex);

    for (size_t hw = 0; hw < cfg.hw.size(); ++hw) {
        PerfModel model(cfg.hw[hw].cluster);
        StrategyExplorer explorer(model);
        PerfReport baseline = explorer.baseline(cfg.desc, cfg.task);
        ASSERT_LT(hw, f.baselines.size());
        EXPECT_EQ(f.baselines[hw].report.valid, baseline.valid);
        EXPECT_EQ(f.baselines[hw].report.throughput(),
                  baseline.throughput());
        try {
            ExplorationResult best = explorer.best(cfg.desc, cfg.task);
            ASSERT_TRUE(covered.count(hw));
            for (const ParetoCandidate &c : f.bestPerHw) {
                if (c.hwIndex != hw)
                    continue;
                EXPECT_EQ(c.report.throughput(),
                          best.report.throughput());
                EXPECT_EQ(c.plan.toString(), best.plan.toString());
            }
        } catch (const ConfigError &) {
            EXPECT_FALSE(covered.count(hw));
        }
    }
}

TEST(ParetoEngineTest, DeterministicAcrossEngineThreadCounts)
{
    CloudConfig cfg;
    auto run = [&](int jobs) {
        EvalEngineOptions eo;
        eo.jobs = jobs;
        EvalEngine shared(eo);
        ParetoEngine engine(cfg.hw, &shared);
        ParetoFrontier f = engine.explore(cfg.desc, cfg.task);
        std::string dump;
        for (const ParetoCandidate &c : f.points) {
            dump += std::to_string(c.hwIndex) + '|' +
                c.plan.toString() + '|' + objectiveKey(c) + '\n';
        }
        return dump;
    };
    EXPECT_EQ(run(1), run(4));
}

TEST(ParetoEngineTest, ScoreObjectivesUsesTheCostModel)
{
    CloudConfig cfg;
    PerfReport report;
    report.valid = true;
    report.globalBatchSize = 1000;
    report.iterationTime = 0.5;
    report.memory.usableCapacity = 10.0;
    report.memory.paramBytes = 4.0;

    CostModelOptions cost;
    cost.dollarsPerA100Hour = 2.0;
    ParetoObjectives obj = scoreObjectives(report, cfg.hw[0], cost);
    EXPECT_DOUBLE_EQ(obj.throughput, 2000.0);
    double rate = cfg.hw[0].cluster.numDevices() *
        cfg.hw[0].a100PeakRatio * 2.0;
    EXPECT_DOUBLE_EQ(obj.perfPerTco, 2000.0 / rate);
    EXPECT_DOUBLE_EQ(obj.memHeadroomBytes, 6.0);
}

// ---- Golden snapshots ------------------------------------------------

// The engine-backed Fig. 1 table must be byte-identical to the
// historical per-instance explorer sweep (the table portion of
// bench/fig01_pareto_frontier's output, captured before the bench
// moved onto the ParetoEngine). Mirrors the bench's rendering.
TEST(ParetoGolden, Fig01FrontierTableIsByteIdentical)
{
    const ModelDesc model = model_zoo::dlrmA();
    const TaskSpec task = TaskSpec::preTraining();
    const double samples = 1e9;
    const double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;

    ParetoEngine pareto(cloudHardwareCatalog(16));
    ParetoFrontier frontier = pareto.explore(model, task);

    std::map<size_t, const ParetoCandidate *> best_by_hw;
    for (const ParetoCandidate &c : frontier.bestPerHw)
        best_by_hw[c.hwIndex] = &c;

    struct Point
    {
        std::string label;
        double hours;
        double elapsed;
        bool tuned;
    };
    std::vector<Point> pts;
    for (size_t hw = 0; hw < pareto.hardware().size(); ++hw) {
        const HardwarePoint &inst = pareto.hardware()[hw];
        const PerfReport &fsdp = frontier.baselines[hw].report;
        if (fsdp.valid) {
            pts.push_back(Point{
                inst.name + " [FSDP]",
                normalizedGpuHours(fsdp, inst.cluster, samples,
                                   a100_peak),
                samples / fsdp.throughput() / 3600.0, false});
        }
        auto it = best_by_hw.find(hw);
        if (it != best_by_hw.end()) {
            const PerfReport &best = it->second->report;
            pts.push_back(Point{
                inst.name + " [MAD-Max]",
                normalizedGpuHours(best, inst.cluster, samples,
                                   a100_peak),
                samples / best.throughput() / 3600.0, true});
        }
    }

    std::vector<ParetoPoint> fsdp_pts, tuned_pts;
    for (size_t i = 0; i < pts.size(); ++i) {
        auto &bucket = pts[i].tuned ? tuned_pts : fsdp_pts;
        bucket.push_back(
            ParetoPoint{pts[i].hours, 1.0 / pts[i].elapsed, i});
    }
    std::set<size_t> on_frontier;
    for (size_t idx : paretoFrontier(fsdp_pts))
        on_frontier.insert(fsdp_pts[idx].tag);
    for (size_t idx : paretoFrontier(tuned_pts))
        on_frontier.insert(tuned_pts[idx].tag);

    AsciiTable table({"configuration", "agg GPU-hrs/1B (A100-norm)",
                      "elapsed hrs/1B", "frontier"});
    for (size_t i = 0; i < pts.size(); ++i) {
        std::string frontier_tag;
        if (on_frontier.count(i)) {
            frontier_tag = pts[i].tuned ? "MAD-Max frontier"
                                        : "default frontier";
        }
        table.addRow({pts[i].label, strfmt("%.0f", pts[i].hours),
                      strfmt("%.2f", pts[i].elapsed), frontier_tag});
    }
    std::ostringstream out;
    table.print(out);
    checkGolden("fig01_pareto_frontier.txt", out.str());
}

// Full JSON rendering of the GPT-3 pre-training exploration — the
// exact body `madmax pareto --format json` and `/v1/pareto` emit for
// this configuration (wall_seconds zeroed: it is the one measured,
// non-deterministic field).
TEST(ParetoGolden, Gpt3CloudJsonSnapshot)
{
    Gpt3Config cfg;
    ParetoEngine engine(cfg.hw);
    ParetoFrontier f = engine.explore(cfg.desc, cfg.task);
    f.stats.wallSeconds = 0.0;
    checkGolden("pareto_gpt3_nodesweep.txt",
                toJson(f, engine.hardware()).dump(2) + "\n");
}

// ---------------------------------------------------------------------
// Serving-placement search over (possibly heterogeneous) clusters.

namespace
{

/** The exemplar serving scenario: LLaMA2-13B at a 2048-token prompt
 *  on the mixed H100 + A100-80GB fleet, 256 generated tokens. */
struct MixedServingConfig
{
    ModelDesc desc = model_zoo::llama2_13b(2048);
    InferenceWorkload workload;
    ClusterSpec cluster = hw_zoo::mixedInferenceFleet();
};

bool
strictlyDominates(const InferencePlacementObjectives &a,
                  const InferencePlacementObjectives &b)
{
    return a.tokensPerSecond > b.tokensPerSecond &&
        a.perfPerTco > b.perfPerTco &&
        a.maxConcurrentSequences > b.maxConcurrentSequences;
}

} // namespace

TEST(InferencePlacement, HomogeneousClusterDegeneratesToColocated)
{
    ModelDesc desc = model_zoo::llama2_7b(512);
    InferenceWorkload workload;
    ClusterSpec cluster = hw_zoo::llmTrainingSystem().withNumNodes(2);
    InferencePlacementFrontier f =
        exploreInferencePlacements(desc, workload, cluster);
    ASSERT_EQ(f.islands.size(), 1u);
    EXPECT_EQ(f.islands[0], cluster.name);
    ASSERT_EQ(f.candidates.size(), 1u);
    EXPECT_FALSE(f.candidates[0].report.disaggregated);
    ASSERT_EQ(f.points.size(), 1u);
    EXPECT_GT(f.points[0].objectives.tokensPerSecond, 0.0);
    // Colocated serving uses one plan for both phases: the weights
    // cannot reshard between a prompt pass and the next token step.
    EXPECT_EQ(f.points[0].prefillPlan.toString(),
              f.points[0].decodePlan.toString());
}

// The ISSUE acceptance bar: on the exemplar mixed-generation fleet,
// the disaggregated placement (compute-dense H100s prefill, capacity-
// dense A100s decode) strictly dominates the best homogeneous
// (colocated, single-island) placement on ALL THREE objectives.
TEST(InferencePlacement, DisaggregationDominatesOnTheMixedFleet)
{
    MixedServingConfig cfg;
    InferencePlacementFrontier f = exploreInferencePlacements(
        cfg.desc, cfg.workload, cfg.cluster);
    ASSERT_EQ(f.islands.size(), 2u);
    EXPECT_EQ(f.islands[0], "h100-pool");
    EXPECT_EQ(f.islands[1], "a100-80-pool");
    ASSERT_EQ(f.candidates.size(), 4u); // 2 islands x 2 phases.

    const InferencePlacementCandidate *winner = nullptr;
    std::vector<const InferencePlacementCandidate *> colocated;
    for (const InferencePlacementCandidate &c : f.candidates) {
        if (c.prefillIsland == 0 && c.decodeIsland == 1)
            winner = &c;
        if (c.prefillIsland == c.decodeIsland)
            colocated.push_back(&c);
    }
    ASSERT_NE(winner, nullptr);
    ASSERT_TRUE(winner->report.valid);
    EXPECT_TRUE(winner->report.disaggregated);
    ASSERT_EQ(colocated.size(), 2u);
    for (const InferencePlacementCandidate *c : colocated) {
        ASSERT_TRUE(c->report.valid);
        EXPECT_TRUE(strictlyDominates(winner->objectives,
                                      c->objectives))
            << "H100-prefill/A100-decode must strictly dominate "
               "colocated " << f.islands[static_cast<size_t>(
                   c->prefillIsland)];
    }
    // It is the unique frontier point of this scenario.
    ASSERT_EQ(f.points.size(), 1u);
    EXPECT_EQ(f.points[0].prefillIsland, 0);
    EXPECT_EQ(f.points[0].decodeIsland, 1);

    // Decode on the A100 pool (more devices -> fewer resident
    // sequences per device) beats the H100 pool's token step.
    EXPECT_LT(winner->report.tpotSeconds,
              colocated[0]->report.tpotSeconds);
}

TEST(InferencePlacement, PinsRestrictTheSearch)
{
    MixedServingConfig cfg;
    cfg.workload.prefillGroup = "h100-pool";
    cfg.workload.decodeGroup = "a100-80-pool";
    InferencePlacementFrontier f = exploreInferencePlacements(
        cfg.desc, cfg.workload, cfg.cluster);
    ASSERT_EQ(f.candidates.size(), 1u);
    EXPECT_EQ(f.candidates[0].prefillIsland, 0);
    EXPECT_EQ(f.candidates[0].decodeIsland, 1);
    EXPECT_TRUE(f.candidates[0].report.disaggregated);
}

TEST(InferencePlacement, RejectsUnknownGroupPins)
{
    MixedServingConfig cfg;
    cfg.workload.decodeGroup = "b200-pool";
    try {
        exploreInferencePlacements(cfg.desc, cfg.workload, cfg.cluster);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown device group \"b200-pool\""),
                  std::string::npos) << msg;
        // Actionable: the error lists what the cluster does define.
        EXPECT_NE(msg.find("h100-pool"), std::string::npos) << msg;
        EXPECT_NE(msg.find("a100-80-pool"), std::string::npos) << msg;
    }
}

TEST(InferencePlacement, DeterministicAcrossEngineThreadCounts)
{
    MixedServingConfig cfg;
    InferencePlacementFrontier serial = exploreInferencePlacements(
        cfg.desc, cfg.workload, cfg.cluster);
    EvalEngineOptions opts;
    opts.jobs = 4;
    EvalEngine engine(opts);
    InferencePlacementFrontier parallel = exploreInferencePlacements(
        cfg.desc, cfg.workload, cfg.cluster, {}, &engine);
    serial.stats.wallSeconds = parallel.stats.wallSeconds = 0.0;
    EXPECT_EQ(toJson(serial).dump(2), toJson(parallel).dump(2));
}

// Full JSON rendering of the exemplar placement search — the exact
// body `madmax pareto --workload ... --format json` and `/v1/pareto`
// (with a "workload" member) emit for this configuration.
TEST(ParetoGolden, MixedFleetPlacementJsonSnapshot)
{
    MixedServingConfig cfg;
    InferencePlacementFrontier f = exploreInferencePlacements(
        cfg.desc, cfg.workload, cfg.cluster);
    f.stats.wallSeconds = 0.0;
    checkGolden("pareto_llama2_mixed_placement.txt",
                toJson(f).dump(2) + "\n");
}

} // namespace madmax
