/**
 * @file
 * Delta re-evaluation in the guided searches must be invisible in
 * every output and visible only in cost accounting: for equal seeds
 * and budgets, annealing / genetic / coordinate-descent produce
 * byte-identical visit sequences, frontiers, and bestPerHw with
 * SearchOptions::deltaEval on and off, and EvalStats always satisfies
 * deltaEvals + fullEvals == evaluations.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dse/pareto_engine.hh"
#include "dse/search_strategy.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"

namespace madmax
{

namespace
{

/**
 * A two-point joint space over DLRM-A with timeline retention off —
 * the configuration under which the incremental splice path actually
 * engages (keepTimeline models always fall back to full builds).
 */
struct DeltaFixture
{
    ModelDesc desc = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    PerfModelOptions opts;
    PerfModel small;
    PerfModel large;
    SearchSpace space;

    static PerfModelOptions noTimeline()
    {
        PerfModelOptions o;
        o.keepTimeline = false;
        return o;
    }

    DeltaFixture()
        : opts(noTimeline()),
          small(hw_zoo::dlrmTrainingSystem().withNumNodes(8), opts),
          large(hw_zoo::dlrmTrainingSystem(), opts)
    {
        space = makeSearchSpace({&small, &large}, desc, task);
    }
};

/** Byte-exact fingerprint of one visited candidate. */
std::string
candidateKey(size_t hwIndex, const ParallelPlan &plan,
             const PerfReport &report)
{
    std::string key = std::to_string(hwIndex) + '|' + plan.toString() +
                      (plan.fsdpPrefetch ? "+p" : "-p") + '|';
    key += std::to_string(report.valid) + '|';
    // Hex-exact doubles: any drift in the evaluation path shows here.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a|%a|%a", report.iterationTime,
                  report.exposedCommTime, report.memory.total());
    return key + buf;
}

std::vector<std::string>
outcomeTrace(const SearchOutcome &outcome)
{
    std::vector<std::string> trace;
    trace.reserve(outcome.evaluated.size());
    for (const SearchCandidate &c : outcome.evaluated)
        trace.push_back(candidateKey(c.hwIndex, c.plan, c.report));
    return trace;
}

std::vector<std::string>
paretoTrace(const std::vector<ParetoCandidate> &candidates)
{
    std::vector<std::string> trace;
    trace.reserve(candidates.size());
    for (const ParetoCandidate &c : candidates)
        trace.push_back(candidateKey(c.hwIndex, c.plan, c.report));
    return trace;
}

void
expectDeltaSplitInvariant(const EvalStats &stats, bool deltaOn)
{
    EXPECT_EQ(stats.deltaEvals + stats.fullEvals, stats.evaluations);
    if (deltaOn)
        EXPECT_GT(stats.deltaEvals, 0);
    else
        EXPECT_EQ(stats.deltaEvals, 0);
}

} // namespace

TEST(GuidedDelta, SearchOutcomesIdenticalWithDeltaOnAndOff)
{
    DeltaFixture cfg;
    for (const std::string &name :
         {std::string("coordinate-descent"), std::string("annealing"),
          std::string("genetic")}) {
        std::unique_ptr<SearchStrategy> strategy =
            makeSearchStrategy(name);

        SearchOptions on;
        on.maxEvaluations = 60;
        on.deltaEval = true;
        SearchOptions off = on;
        off.deltaEval = false;

        EvalEngine engineOn;
        EvalEngine engineOff;
        const SearchOutcome a =
            strategy->run(cfg.space, engineOn, on);
        const SearchOutcome b =
            strategy->run(cfg.space, engineOff, off);

        EXPECT_EQ(outcomeTrace(a), outcomeTrace(b)) << name;
        EXPECT_EQ(a.stats.evaluations, b.stats.evaluations) << name;
        EXPECT_EQ(a.stats.cacheHits, b.stats.cacheHits) << name;
        EXPECT_EQ(a.stats.pruned, b.stats.pruned) << name;
        expectDeltaSplitInvariant(a.stats, /*deltaOn=*/true);
        expectDeltaSplitInvariant(b.stats, /*deltaOn=*/false);
    }
}

TEST(GuidedDelta, ExhaustiveIgnoresDeltaSessions)
{
    DeltaFixture cfg;
    std::unique_ptr<SearchStrategy> strategy =
        makeSearchStrategy("exhaustive");
    SearchOptions on;
    on.deltaEval = true;
    EvalEngine engine;
    const SearchOutcome outcome = strategy->run(cfg.space, engine, on);
    // The one wide batch stays on the engine pool: no delta split.
    EXPECT_EQ(outcome.stats.deltaEvals, 0);
    EXPECT_EQ(outcome.stats.fullEvals, outcome.stats.evaluations);
}

TEST(GuidedDelta, ParetoFrontiersIdenticalWithDeltaOnAndOff)
{
    std::vector<HardwarePoint> hw = nodeCountSweep(
        hw_zoo::dlrmTrainingSystem(), {8, 16});
    ModelDesc desc = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();

    for (const std::string &name :
         {std::string("annealing"), std::string("genetic")}) {
        ParetoOptions on;
        on.strategy = name;
        on.search.maxEvaluations = 60;
        on.search.deltaEval = true;
        ParetoOptions off = on;
        off.search.deltaEval = false;

        ParetoEngine engineOn(hw);
        ParetoEngine engineOff(hw);
        const ParetoFrontier a = engineOn.explore(desc, task, on);
        const ParetoFrontier b = engineOff.explore(desc, task, off);

        EXPECT_EQ(paretoTrace(a.points), paretoTrace(b.points)) << name;
        EXPECT_EQ(paretoTrace(a.bestPerHw), paretoTrace(b.bestPerHw))
            << name;
        EXPECT_EQ(paretoTrace(a.candidates), paretoTrace(b.candidates))
            << name;
        EXPECT_EQ(a.stats.evaluations, b.stats.evaluations) << name;
        expectDeltaSplitInvariant(a.stats, /*deltaOn=*/true);
        expectDeltaSplitInvariant(b.stats, /*deltaOn=*/false);
    }
}

} // namespace madmax
