#include <gtest/gtest.h>

#include "dse/sweep.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(Sweep, AxisNamesAndList)
{
    EXPECT_EQ(toString(HwAxis::Compute), "compute");
    EXPECT_EQ(toString(HwAxis::InterBandwidth), "inter-node-bw");
    EXPECT_EQ(toString(HwAxis::All), "all");
    EXPECT_EQ(allHwAxes().size(), 6u);
}

TEST(Sweep, ScaleAxisTouchesOnlyItsCapability)
{
    ClusterSpec base = hw_zoo::dlrmTrainingSystem();
    ClusterSpec c = scaleAxis(base, HwAxis::Compute, 10.0);
    EXPECT_DOUBLE_EQ(c.device.peakFlopsTf32,
                     base.device.peakFlopsTf32 * 10.0);
    EXPECT_DOUBLE_EQ(c.device.hbmBandwidth, base.device.hbmBandwidth);

    ClusterSpec all = scaleAxis(base, HwAxis::All, 10.0);
    EXPECT_DOUBLE_EQ(all.device.peakFlopsTf32,
                     base.device.peakFlopsTf32 * 10.0);
    EXPECT_DOUBLE_EQ(all.device.hbmCapacity,
                     base.device.hbmCapacity * 10.0);
    EXPECT_DOUBLE_EQ(all.device.hbmBandwidth,
                     base.device.hbmBandwidth * 10.0);
    EXPECT_DOUBLE_EQ(all.device.intraNodeBandwidth,
                     base.device.intraNodeBandwidth * 10.0);
    EXPECT_DOUBLE_EQ(all.device.interNodeBandwidth,
                     base.device.interNodeBandwidth * 10.0);
}

TEST(Sweep, ScalingStudyShape)
{
    // Fig. 19: individual-axis scaling is sub-linear; scaling all
    // axes concurrently is super-linear relative to the best single
    // axis.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    std::vector<ScalingResult> results = hardwareScalingStudy(
        model, model_zoo::dlrmA(), TaskSpec::preTraining(), 10.0);
    ASSERT_EQ(results.size(), 6u);

    double best_single = 0.0, all_axes = 0.0;
    for (const ScalingResult &r : results) {
        EXPECT_GE(r.speedup, 0.99) << toString(r.axis);
        EXPECT_TRUE(r.best.report.valid) << toString(r.axis);
        if (r.axis == HwAxis::All)
            all_axes = r.speedup;
        else
            best_single = std::max(best_single, r.speedup);
    }
    EXPECT_LT(best_single, 10.0);      // Sub-linear individually.
    EXPECT_GT(all_axes, best_single);  // Joint beats any single axis.
}

TEST(Sweep, InterBandwidthMattersMostForDlrm)
{
    // Insight 10: for All2All-bound DLRM-A, inter-node bandwidth is
    // the most valuable single axis.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    std::vector<ScalingResult> results = hardwareScalingStudy(
        model, model_zoo::dlrmA(), TaskSpec::preTraining(), 10.0,
        {HwAxis::Compute, HwAxis::HbmBandwidth,
         HwAxis::InterBandwidth});
    double inter = 0.0, others = 0.0;
    for (const ScalingResult &r : results) {
        if (r.axis == HwAxis::InterBandwidth)
            inter = r.speedup;
        else
            others = std::max(others, r.speedup);
    }
    EXPECT_GT(inter, others);
}

TEST(Sweep, NormalizedGpuHours)
{
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    StrategyExplorer explorer(model);
    PerfReport r = explorer.baseline(model_zoo::dlrmA(),
                                     TaskSpec::preTraining());
    double a100_peak = hw_zoo::a100_40().peakFlopsTensor16;
    double hours =
        normalizedGpuHours(r, model.cluster(), 1e9, a100_peak);
    // A100 cluster: ratio is exactly 1.
    EXPECT_NEAR(hours, r.deviceHoursPerSamples(1e9, 128, 1.0), 1e-9);

    // H100 cluster: same raw hours weigh ~2.42x more.
    ClusterSpec h100 = hw_zoo::h100System();
    double ratio = hw_zoo::h100().peakFlopsTensor16 / a100_peak;
    PerfReport rh = PerfModel(h100).evaluate(
        model_zoo::dlrmA(), TaskSpec::preTraining(),
        ParallelPlan::fsdpBaseline());
    EXPECT_NEAR(normalizedGpuHours(rh, h100, 1e9, a100_peak),
                rh.deviceHoursPerSamples(1e9, 128, ratio), 1e-9);

    EXPECT_THROW(normalizedGpuHours(r, model.cluster(), 1e9, 0.0),
                 ConfigError);
}

} // namespace madmax
