/**
 * @file
 * Randomized property pin for the N-dimensional Pareto extractor: on
 * seeded random point clouds (2–4 objectives, duplicates and ties
 * included), the frontier must be mutually non-dominated, and every
 * dropped point must be accounted for — dominated by some frontier
 * point, or a bitwise duplicate of an earlier frontier point (the
 * documented first-occurrence tie rule).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "dse/pareto.hh"

namespace madmax
{

namespace
{

std::vector<ParetoPointNd>
randomCloud(std::mt19937_64 &rng, size_t dims, size_t count)
{
    // A small discrete value set forces ties and duplicates, which is
    // where dominance logic usually goes wrong.
    std::uniform_int_distribution<int> coord(0, 7);
    std::vector<ParetoPointNd> pts(count);
    for (size_t i = 0; i < count; ++i) {
        pts[i].tag = i;
        pts[i].objectives.resize(dims);
        for (size_t d = 0; d < dims; ++d)
            pts[i].objectives[d] = static_cast<double>(coord(rng));
    }
    return pts;
}

} // namespace

TEST(ParetoNdProperty, FrontierIsMutuallyNonDominated)
{
    std::mt19937_64 rng(0xf207);
    for (int round = 0; round < 40; ++round) {
        const size_t dims = 2 + round % 3;
        std::vector<ParetoPointNd> pts = randomCloud(rng, dims, 60);
        const std::vector<size_t> frontier = paretoFrontierNd(pts);

        for (size_t a : frontier) {
            for (size_t b : frontier) {
                if (a == b)
                    continue;
                EXPECT_FALSE(dominates(pts[a], pts[b]))
                    << "round " << round << ": frontier point " << a
                    << " dominates frontier point " << b;
            }
        }
    }
}

TEST(ParetoNdProperty, EveryDroppedPointIsAccountedFor)
{
    std::mt19937_64 rng(0xacc7);
    for (int round = 0; round < 40; ++round) {
        const size_t dims = 2 + round % 3;
        std::vector<ParetoPointNd> pts = randomCloud(rng, dims, 60);
        const std::vector<size_t> frontier = paretoFrontierNd(pts);

        std::vector<bool> kept(pts.size(), false);
        for (size_t f : frontier)
            kept[f] = true;

        for (size_t i = 0; i < pts.size(); ++i) {
            if (kept[i])
                continue;
            bool dominated = false;
            bool duplicateOfEarlierKept = false;
            for (size_t f : frontier) {
                if (dominates(pts[f], pts[i]))
                    dominated = true;
                if (f < i && pts[f].objectives == pts[i].objectives)
                    duplicateOfEarlierKept = true;
            }
            EXPECT_TRUE(dominated || duplicateOfEarlierKept)
                << "round " << round << ": dropped point " << i
                << " is neither dominated nor a duplicate of a kept "
                   "frontier point";
        }
    }
}

} // namespace madmax
