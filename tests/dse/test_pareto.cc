#include <gtest/gtest.h>

#include <algorithm>

#include "dse/pareto.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(Pareto, Dominates)
{
    ParetoPoint cheap_fast{1.0, 10.0, 0};
    ParetoPoint costly_slow{2.0, 5.0, 1};
    ParetoPoint equal{1.0, 10.0, 2};
    EXPECT_TRUE(dominates(cheap_fast, costly_slow));
    EXPECT_FALSE(dominates(costly_slow, cheap_fast));
    EXPECT_FALSE(dominates(cheap_fast, equal)); // Ties don't dominate.
}

TEST(Pareto, FrontierExtraction)
{
    std::vector<ParetoPoint> pts = {
        {1.0, 1.0, 0},  // On frontier (cheapest).
        {2.0, 3.0, 1},  // On frontier.
        {3.0, 2.0, 2},  // Dominated by point 1.
        {4.0, 5.0, 3},  // On frontier.
        {4.0, 4.0, 4},  // Dominated by point 3.
    };
    std::vector<size_t> frontier = paretoFrontier(pts);
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1, 3}));
}

TEST(Pareto, FrontierIsSortedByCost)
{
    std::vector<ParetoPoint> pts = {
        {5.0, 50.0, 0},
        {1.0, 10.0, 1},
        {3.0, 30.0, 2},
    };
    std::vector<size_t> frontier = paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier, (std::vector<size_t>{1, 2, 0}));
}

TEST(Pareto, SinglePointAndEmpty)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
    EXPECT_EQ(paretoFrontier({{1.0, 1.0, 0}}),
              (std::vector<size_t>{0}));
}

TEST(Pareto, EqualCostKeepsBestValue)
{
    std::vector<ParetoPoint> pts = {
        {1.0, 5.0, 0},
        {1.0, 9.0, 1},
    };
    std::vector<size_t> frontier = paretoFrontier(pts);
    EXPECT_EQ(frontier, (std::vector<size_t>{1}));
}

TEST(Pareto, AllDominatedByOne)
{
    std::vector<ParetoPoint> pts = {
        {1.0, 100.0, 0},
        {2.0, 50.0, 1},
        {3.0, 20.0, 2},
        {4.0, 99.0, 3},
    };
    EXPECT_EQ(paretoFrontier(pts), (std::vector<size_t>{0}));
}

TEST(ParetoNd, DominatesRequiresStrictImprovement)
{
    ParetoPointNd a{{2.0, 2.0, 2.0}, 0};
    ParetoPointNd b{{1.0, 2.0, 2.0}, 1};
    ParetoPointNd equal{{2.0, 2.0, 2.0}, 2};
    ParetoPointNd mixed{{3.0, 1.0, 2.0}, 3};
    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, equal)); // Ties don't dominate.
    EXPECT_FALSE(dominates(a, mixed)); // Trade-offs don't dominate.
    EXPECT_FALSE(dominates(mixed, a));
}

TEST(ParetoNd, DimensionMismatchThrows)
{
    ParetoPointNd a{{1.0, 2.0}, 0};
    ParetoPointNd b{{1.0, 2.0, 3.0}, 1};
    EXPECT_THROW(dominates(a, b), ConfigError);
}

TEST(ParetoNd, FrontierKeepsNonDominatedInInputOrder)
{
    std::vector<ParetoPointNd> pts = {
        {{1.0, 5.0, 1.0}, 0}, // Dominated by 1 (>= everywhere, > first).
        {{2.0, 6.0, 1.0}, 1}, // On frontier (best second axis).
        {{1.0, 4.0, 1.0}, 2}, // Dominated by 0 and 1.
        {{3.0, 5.0, 1.0}, 3}, // On frontier (best first axis).
    };
    EXPECT_EQ(paretoFrontierNd(pts), (std::vector<size_t>{1, 3}));
}

TEST(ParetoNd, ExactDuplicatesKeepFirst)
{
    std::vector<ParetoPointNd> pts = {
        {{1.0, 1.0}, 0},
        {{1.0, 1.0}, 1}, // Bitwise duplicate of 0.
        {{2.0, 0.5}, 2},
    };
    EXPECT_EQ(paretoFrontierNd(pts), (std::vector<size_t>{0, 2}));
}

TEST(ParetoNd, SingleAndEmpty)
{
    EXPECT_TRUE(paretoFrontierNd({}).empty());
    EXPECT_EQ(paretoFrontierNd({{{1.0}, 0}}),
              (std::vector<size_t>{0}));
}

TEST(ParetoNd, ThreeAxisFrontierMatchesTwoAxisWhenOneIsConstant)
{
    // With one axis constant, the 3-D frontier degenerates to the
    // 2-D one — the single-hardware-point fig13 property.
    std::vector<ParetoPoint> pts2d = {
        {1.0, 1.0, 0}, {2.0, 3.0, 1}, {3.0, 2.0, 2}, {4.0, 5.0, 3},
    };
    std::vector<ParetoPointNd> pts3d;
    for (const ParetoPoint &p : pts2d)
        pts3d.push_back(ParetoPointNd{{-p.cost, p.value, 7.0}, p.tag});
    std::vector<size_t> got = paretoFrontierNd(pts3d);
    std::vector<size_t> want = paretoFrontier(pts2d);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
}

} // namespace madmax
