#include <gtest/gtest.h>

#include "dse/pareto.hh"

namespace madmax
{

TEST(Pareto, Dominates)
{
    ParetoPoint cheap_fast{1.0, 10.0, 0};
    ParetoPoint costly_slow{2.0, 5.0, 1};
    ParetoPoint equal{1.0, 10.0, 2};
    EXPECT_TRUE(dominates(cheap_fast, costly_slow));
    EXPECT_FALSE(dominates(costly_slow, cheap_fast));
    EXPECT_FALSE(dominates(cheap_fast, equal)); // Ties don't dominate.
}

TEST(Pareto, FrontierExtraction)
{
    std::vector<ParetoPoint> pts = {
        {1.0, 1.0, 0},  // On frontier (cheapest).
        {2.0, 3.0, 1},  // On frontier.
        {3.0, 2.0, 2},  // Dominated by point 1.
        {4.0, 5.0, 3},  // On frontier.
        {4.0, 4.0, 4},  // Dominated by point 3.
    };
    std::vector<size_t> frontier = paretoFrontier(pts);
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1, 3}));
}

TEST(Pareto, FrontierIsSortedByCost)
{
    std::vector<ParetoPoint> pts = {
        {5.0, 50.0, 0},
        {1.0, 10.0, 1},
        {3.0, 30.0, 2},
    };
    std::vector<size_t> frontier = paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier, (std::vector<size_t>{1, 2, 0}));
}

TEST(Pareto, SinglePointAndEmpty)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
    EXPECT_EQ(paretoFrontier({{1.0, 1.0, 0}}),
              (std::vector<size_t>{0}));
}

TEST(Pareto, EqualCostKeepsBestValue)
{
    std::vector<ParetoPoint> pts = {
        {1.0, 5.0, 0},
        {1.0, 9.0, 1},
    };
    std::vector<size_t> frontier = paretoFrontier(pts);
    EXPECT_EQ(frontier, (std::vector<size_t>{1}));
}

TEST(Pareto, AllDominatedByOne)
{
    std::vector<ParetoPoint> pts = {
        {1.0, 100.0, 0},
        {2.0, 50.0, 1},
        {3.0, 20.0, 2},
        {4.0, 99.0, 3},
    };
    EXPECT_EQ(paretoFrontier(pts), (std::vector<size_t>{0}));
}

} // namespace madmax
