/**
 * @file
 * SearchStrategy contract tests: registry round-trips, exhaustive
 * parity with explore(), canonical enumeration order, hard evaluation
 * budgets, seeded determinism, and warm-start behavior — everything
 * the ParetoEngine and StrategyExplorer::best() rely on.
 */

#include <gtest/gtest.h>

#include "core/strategy_explorer.hh"
#include "dse/search_strategy.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

/** A two-point joint space (ZionEX at 8 and 16 nodes) over DLRM-A. */
struct JointFixture
{
    ModelDesc desc = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    PerfModel small;
    PerfModel large;
    SearchSpace space;

    JointFixture()
        : small(hw_zoo::dlrmTrainingSystem().withNumNodes(8)),
          large(hw_zoo::dlrmTrainingSystem())
    {
        space = makeSearchSpace({&small, &large}, desc, task);
    }
};

/** Visit-order fingerprint: (hwIndex, plan, prefetch) per candidate. */
std::vector<std::string>
visitTrace(const SearchOutcome &outcome)
{
    std::vector<std::string> trace;
    trace.reserve(outcome.evaluated.size());
    for (const SearchCandidate &c : outcome.evaluated) {
        trace.push_back(std::to_string(c.hwIndex) + '|' +
                        c.plan.toString() +
                        (c.plan.fsdpPrefetch ? "+p" : "-p"));
    }
    return trace;
}

} // namespace

TEST(SearchStrategyRegistry, NamesRoundTripThroughFactory)
{
    ASSERT_EQ(searchStrategyNames().size(), 4u);
    for (const std::string &name : searchStrategyNames()) {
        std::unique_ptr<SearchStrategy> strategy =
            makeSearchStrategy(name);
        ASSERT_NE(strategy, nullptr);
        EXPECT_EQ(strategy->name(), name);
    }
}

TEST(SearchStrategyRegistry, UnknownNameThrowsWithKnownList)
{
    try {
        makeSearchStrategy("gradient-descent");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("exhaustive"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("genetic"),
                  std::string::npos);
    }
}

TEST(SearchStrategyRegistry, AlgorithmEnumMapsToRegistry)
{
    for (SearchAlgorithm a :
         {SearchAlgorithm::Exhaustive, SearchAlgorithm::CoordinateDescent,
          SearchAlgorithm::SimulatedAnnealing, SearchAlgorithm::Genetic}) {
        EXPECT_EQ(makeSearchStrategy(toString(a))->name(), toString(a));
    }
}

TEST(SearchSpaceTest, MakeSearchSpaceFindsPresentClasses)
{
    PerfModel model(hw_zoo::llmTrainingSystem());
    ModelDesc gpt3 = model_zoo::gpt3();
    TaskSpec task = TaskSpec::preTraining();
    SearchSpace space = makeSearchSpace({&model}, gpt3, task);
    ASSERT_EQ(space.models.size(), 1u);
    ASSERT_EQ(space.classes.size(), space.candidates.size());
    size_t product = 1;
    for (const auto &cands : space.candidates)
        product *= cands.size();
    EXPECT_EQ(space.planCount(), product);
    EXPECT_EQ(space.size(), product);
}

TEST(SearchSpaceTest, ValidateRejectsBrokenSpaces)
{
    SearchSpace empty;
    EXPECT_THROW(empty.validate(), ConfigError);

    JointFixture fx;
    SearchSpace bad = fx.space;
    bad.candidates.pop_back();
    EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(EnumeratePlans, CanonicalOrderAndPrefetchVariants)
{
    JointFixture fx;
    std::vector<ParallelPlan> plans = enumeratePlans(fx.space);
    ASSERT_EQ(plans.size(), fx.space.planCount());
    // First plan: every class at its first candidate, prefetch on.
    for (size_t ci = 0; ci < fx.space.classes.size(); ++ci) {
        EXPECT_EQ(plans[0].strategyFor(fx.space.classes[ci]),
                  fx.space.candidates[ci][0]);
    }
    EXPECT_TRUE(plans[0].fsdpPrefetch);

    SearchSpace withPrefetch = fx.space;
    withPrefetch.explorePrefetch = true;
    std::vector<ParallelPlan> expanded = enumeratePlans(withPrefetch);
    EXPECT_GT(expanded.size(), plans.size());
    // The appended variants are prefetch-off copies of FSDP plans.
    for (size_t i = plans.size(); i < expanded.size(); ++i)
        EXPECT_FALSE(expanded[i].fsdpPrefetch);
}

TEST(ExhaustiveSearch, MatchesExploreReportsAndStats)
{
    JointFixture fx;
    SearchSpace single = makeSearchSpace({&fx.large}, fx.desc, fx.task);

    EvalEngine engineA;
    SearchOutcome outcome = makeSearchStrategy("exhaustive")
                                ->run(single, engineA);

    EvalEngine engineB;
    StrategyExplorer explorer(fx.large, &engineB);
    Exploration exploration = explorer.explore(fx.desc, fx.task);

    ASSERT_EQ(outcome.evaluated.size(), exploration.results.size());
    EXPECT_EQ(outcome.stats.evaluations, exploration.stats.evaluations);
    EXPECT_EQ(outcome.stats.pruned, exploration.stats.pruned);
    EXPECT_EQ(outcome.stats.cacheHits, exploration.stats.cacheHits);

    // Same best point, bitwise.
    const SearchCandidate *best = bestCandidate(outcome);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->report.throughput(),
              exploration.results[0].report.throughput());
    EXPECT_EQ(best->plan.toString(),
              exploration.results[0].plan.toString());
}

TEST(ExhaustiveSearch, CoversTheFullJointSpace)
{
    JointFixture fx;
    EvalEngine engine;
    SearchOutcome outcome =
        makeSearchStrategy("exhaustive")->run(fx.space, engine);
    EXPECT_EQ(outcome.evaluated.size(), fx.space.size());
    // Hardware-major order: the first planCount() visits are hw 0.
    for (size_t i = 0; i < fx.space.planCount(); ++i)
        EXPECT_EQ(outcome.evaluated[i].hwIndex, 0u);
    EXPECT_EQ(outcome.evaluated.back().hwIndex, 1u);
}

TEST(GuidedSearch, BudgetIsAHardCeiling)
{
    JointFixture fx;
    for (const char *name : {"annealing", "genetic",
                             "coordinate-descent"}) {
        EvalEngine engine;
        SearchOptions opts;
        opts.maxEvaluations = 7;
        SearchOutcome outcome =
            makeSearchStrategy(name)->run(fx.space, engine, opts);
        EXPECT_LE(outcome.stats.evaluations, 7) << name;
    }
}

TEST(GuidedSearch, NegativeBudgetEvaluatesNothing)
{
    JointFixture fx;
    for (const char *name : {"annealing", "genetic"}) {
        EvalEngine engine;
        SearchOptions opts;
        opts.maxEvaluations = -1;
        SearchOutcome outcome =
            makeSearchStrategy(name)->run(fx.space, engine, opts);
        EXPECT_EQ(outcome.stats.evaluations, 0) << name;
        EXPECT_TRUE(outcome.evaluated.empty()) << name;
    }
}

TEST(GuidedSearch, SameSeedSameOutcome)
{
    JointFixture fx;
    for (const char *name : {"annealing", "genetic"}) {
        SearchOptions opts;
        opts.seed = 42;
        EvalEngine engineA, engineB;
        SearchOutcome a =
            makeSearchStrategy(name)->run(fx.space, engineA, opts);
        SearchOutcome b =
            makeSearchStrategy(name)->run(fx.space, engineB, opts);
        EXPECT_EQ(visitTrace(a), visitTrace(b)) << name;
        EXPECT_EQ(a.stats.evaluations, b.stats.evaluations) << name;
    }
}

TEST(GuidedSearch, WarmStartPinsTheSeedHardwarePoint)
{
    JointFixture fx;

    // Pretend hardware point 0 (the small system) won the baseline
    // sweep; the guided searches must start there instead of on the
    // capability-ranked larger one. (A synthetic report suffices —
    // strategies only read hwIndex, validity, and throughput.)
    SearchSpace warm = fx.space;
    PerfReport seeded;
    seeded.valid = true;
    seeded.globalBatchSize = 1000;
    seeded.iterationTime = 1.0;
    warm.warmStart.push_back(
        SearchCandidate{0, ParallelPlan::fsdpBaseline(), seeded});

    for (const char *name : {"annealing", "genetic",
                             "coordinate-descent"}) {
        EvalEngine engine;
        SearchOutcome outcome =
            makeSearchStrategy(name)->run(warm, engine);
        ASSERT_FALSE(outcome.evaluated.empty()) << name;
        EXPECT_EQ(outcome.evaluated[0].hwIndex, 0u) << name;
    }
}

TEST(GuidedSearch, FindsTheJointOptimumOnThisSpace)
{
    // Both budgeted searches reach the exhaustive optimum of the
    // two-point joint space (deterministic seeds; the space is small
    // enough that anything less indicates a search bug).
    JointFixture fx;
    EvalEngine exhaustiveEngine;
    SearchOutcome exhaustive = makeSearchStrategy("exhaustive")
                                   ->run(fx.space, exhaustiveEngine);
    const SearchCandidate *best = bestCandidate(exhaustive);
    ASSERT_NE(best, nullptr);

    for (const char *name : {"coordinate-descent", "annealing",
                             "genetic"}) {
        EvalEngine engine;
        SearchOutcome outcome =
            makeSearchStrategy(name)->run(fx.space, engine);
        const SearchCandidate *found = bestCandidate(outcome);
        ASSERT_NE(found, nullptr) << name;
        EXPECT_GE(found->report.throughput(),
                  0.95 * best->report.throughput())
            << name;
        // <= rather than <: this joint space is so heavily OOM-pruned
        // that exhaustive itself needs only a handful of evaluations.
        EXPECT_LE(outcome.stats.evaluations,
                  exhaustive.stats.evaluations)
            << name;
    }
}

TEST(BestCandidateTest, FirstWinsTiesAndInvalidLoses)
{
    SearchOutcome outcome;
    SearchCandidate a;
    a.hwIndex = 0;
    a.report.valid = false;
    outcome.evaluated.push_back(a);
    EXPECT_EQ(bestCandidate(outcome), nullptr);

    SearchCandidate b;
    b.hwIndex = 1;
    b.report.valid = true;
    b.report.iterationTime = 1.0;
    b.report.globalBatchSize = 100;
    outcome.evaluated.push_back(b);
    SearchCandidate c = b;
    c.hwIndex = 2;
    outcome.evaluated.push_back(c);
    const SearchCandidate *best = bestCandidate(outcome);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->hwIndex, 1u); // Equal throughput: first wins.
}

} // namespace madmax
