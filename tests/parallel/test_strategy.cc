#include <gtest/gtest.h>

#include "parallel/strategy.hh"

namespace madmax
{

TEST(Strategy, Predicates)
{
    EXPECT_TRUE(shardsParams(Strategy::FSDP));
    EXPECT_TRUE(shardsParams(Strategy::TP));
    EXPECT_TRUE(shardsParams(Strategy::MP));
    EXPECT_FALSE(shardsParams(Strategy::DDP));
    EXPECT_FALSE(shardsParams(Strategy::None));

    EXPECT_TRUE(splitsData(Strategy::DDP));
    EXPECT_TRUE(splitsData(Strategy::FSDP));
    EXPECT_FALSE(splitsData(Strategy::TP));
    EXPECT_FALSE(splitsData(Strategy::MP));
}

TEST(HierStrategy, PaperNotation)
{
    EXPECT_EQ(HierStrategy{Strategy::FSDP}.toString(), "(FSDP)");
    EXPECT_EQ((HierStrategy{Strategy::TP, Strategy::DDP}).toString(),
              "(TP, DDP)");
    EXPECT_EQ((HierStrategy{Strategy::MP, Strategy::DDP}).toString(),
              "(MP, DDP)");
}

TEST(HierStrategy, GlobalDetectionAndEquality)
{
    HierStrategy global{Strategy::TP};
    EXPECT_TRUE(global.isGlobal());
    HierStrategy hier{Strategy::TP, Strategy::DDP};
    EXPECT_FALSE(hier.isGlobal());
    EXPECT_EQ(global, (HierStrategy{Strategy::TP, Strategy::None}));
    EXPECT_NE(global, hier);
}

TEST(ParallelPlan, DefaultsFollowPaperAssumptions)
{
    ParallelPlan empty;
    // Sparse embeddings default to sharding (Insight 1).
    EXPECT_EQ(empty.strategyFor(LayerClass::SparseEmbedding),
              HierStrategy{Strategy::MP});
    // Everything else defaults to the FSDP baseline.
    EXPECT_EQ(empty.strategyFor(LayerClass::Transformer),
              HierStrategy{Strategy::FSDP});
}

TEST(ParallelPlan, SetOverridesAndChains)
{
    ParallelPlan p;
    p.set(LayerClass::BaseDense, HierStrategy{Strategy::TP, Strategy::DDP})
        .set(LayerClass::Transformer, HierStrategy{Strategy::DDP});
    EXPECT_EQ(p.strategyFor(LayerClass::BaseDense),
              (HierStrategy{Strategy::TP, Strategy::DDP}));
    EXPECT_EQ(p.strategyFor(LayerClass::Transformer),
              HierStrategy{Strategy::DDP});
}

TEST(ParallelPlan, FsdpBaselineCoversAllClasses)
{
    ParallelPlan p = ParallelPlan::fsdpBaseline();
    EXPECT_EQ(p.strategyFor(LayerClass::SparseEmbedding),
              HierStrategy{Strategy::MP});
    for (LayerClass cls :
         {LayerClass::DenseEmbedding, LayerClass::BaseDense,
          LayerClass::Transformer}) {
        EXPECT_EQ(p.strategyFor(cls), HierStrategy{Strategy::FSDP});
    }
    // MoE banks pair FSDP recipes with expert parallelism.
    EXPECT_EQ(p.strategyFor(LayerClass::MoE), HierStrategy{Strategy::MP});
    // Prefetching is the Fig. 9 optimization, not the baseline.
    EXPECT_FALSE(p.fsdpPrefetch);
}

TEST(ParallelPlan, ToStringListsClasses)
{
    ParallelPlan p;
    p.set(LayerClass::BaseDense,
          HierStrategy{Strategy::TP, Strategy::DDP});
    std::string s = p.toString();
    EXPECT_NE(s.find("base-dense=(TP, DDP)"), std::string::npos);
    EXPECT_EQ(ParallelPlan{}.toString(), "(defaults)");
}

} // namespace madmax
