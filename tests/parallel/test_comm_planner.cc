#include <gtest/gtest.h>

#include <algorithm>

#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "parallel/comm_planner.hh"

namespace madmax
{

namespace
{

int
countOps(const std::vector<CommOp> &ops, Collective kind, Phase phase)
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [&](const CommOp &op) {
            return op.kind == kind && op.phase == phase;
        }));
}

const CommOp *
findOp(const std::vector<CommOp> &ops, Collective kind, Phase phase)
{
    for (const CommOp &op : ops) {
        if (op.kind == kind && op.phase == phase)
            return &op;
    }
    return nullptr;
}

} // namespace

class CommPlannerDlrm : public ::testing::Test
{
  protected:
    CommPlannerDlrm()
        : desc_(model_zoo::dlrmA()), cluster_(hw_zoo::dlrmTrainingSystem())
    {
    }

    ModelDesc desc_;
    ClusterSpec cluster_;
};

TEST_F(CommPlannerDlrm, ShardedEmbeddingEmitsBlockingAll2Alls)
{
    ParallelPlan plan;
    plan.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
    plan.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    CommPlanner planner(desc_, TaskSpec::preTraining(), plan, cluster_);

    std::vector<CommOp> emb_ops = planner.planLayer(0);
    // Forward redistribution + backward gradient routing.
    ASSERT_EQ(countOps(emb_ops, Collective::All2All, Phase::Forward), 1);
    ASSERT_EQ(countOps(emb_ops, Collective::All2All, Phase::Backward), 1);

    const CommOp *fwd = findOp(emb_ops, Collective::All2All,
                               Phase::Forward);
    EXPECT_TRUE(fwd->blocking);
    EXPECT_EQ(fwd->position, CommPosition::Post);
    EXPECT_EQ(fwd->scope, CommScope::Global);
    // Send bytes: pooled output x batch / devices.
    double pooled =
        desc_.graph.layer(0).outputBytesPerSample(4.0);
    EXPECT_NEAR(fwd->bytes,
                pooled * desc_.globalBatchSize / cluster_.numDevices(),
                1.0);

    const CommOp *bwd = findOp(emb_ops, Collective::All2All,
                               Phase::Backward);
    EXPECT_EQ(bwd->position, CommPosition::Pre);
    EXPECT_TRUE(bwd->blocking);
}

TEST_F(CommPlannerDlrm, FrozenEmbeddingSkipsGradientAll2All)
{
    // Insight 5 mechanism: fine-tuning only the dense layers removes
    // the backward embedding All2All but keeps the forward one.
    ParallelPlan plan;
    CommPlanner planner(desc_,
                        TaskSpec::fineTuning(FineTuneScope::DenseOnly),
                        plan, cluster_);
    std::vector<CommOp> emb_ops = planner.planLayer(0);
    EXPECT_EQ(countOps(emb_ops, Collective::All2All, Phase::Forward), 1);
    EXPECT_EQ(countOps(emb_ops, Collective::All2All, Phase::Backward), 0);
}

TEST_F(CommPlannerDlrm, InferenceHasNoBackwardComms)
{
    CommPlanner planner(desc_, TaskSpec::inference(),
                        ParallelPlan::fsdpBaseline(), cluster_);
    for (const CommOp &op : planner.planAll())
        EXPECT_EQ(op.phase, Phase::Forward) << op.tag;
}

TEST_F(CommPlannerDlrm, DdpEmitsNonBlockingGradientAllReduce)
{
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    CommPlanner planner(desc_, TaskSpec::preTraining(), plan, cluster_);

    // Top MLP is layer 3.
    std::vector<CommOp> ops = planner.planLayer(3);
    ASSERT_EQ(countOps(ops, Collective::AllReduce, Phase::Backward), 1);
    const CommOp *ar = findOp(ops, Collective::AllReduce, Phase::Backward);
    EXPECT_FALSE(ar->blocking); // Off the backprop critical path.
    EXPECT_EQ(ar->scope, CommScope::Global);
    // Full gradient tensor.
    double p_bytes = desc_.graph.layer(3).paramCount() * 4.0;
    EXPECT_NEAR(ar->bytes, p_bytes, 1.0);
    // No forward comm for DDP.
    EXPECT_EQ(countOps(ops, Collective::AllReduce, Phase::Forward), 0);
}

TEST_F(CommPlannerDlrm, FsdpEmitsGatherGatherScatter)
{
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense, HierStrategy{Strategy::FSDP});
    CommPlanner planner(desc_, TaskSpec::preTraining(), plan, cluster_);

    std::vector<CommOp> ops = planner.planLayer(3);
    EXPECT_EQ(countOps(ops, Collective::AllGather, Phase::Forward), 1);
    EXPECT_EQ(countOps(ops, Collective::AllGather, Phase::Backward), 1);
    EXPECT_EQ(countOps(ops, Collective::ReduceScatter, Phase::Backward),
              1);

    const CommOp *ag = findOp(ops, Collective::AllGather, Phase::Forward);
    EXPECT_TRUE(ag->blocking);
    EXPECT_EQ(ag->position, CommPosition::Pre);
    const CommOp *rs =
        findOp(ops, Collective::ReduceScatter, Phase::Backward);
    EXPECT_FALSE(rs->blocking);

    // Inference keeps only the forward gather.
    CommPlanner inf(desc_, TaskSpec::inference(), plan, cluster_);
    std::vector<CommOp> iops = inf.planLayer(3);
    EXPECT_EQ(countOps(iops, Collective::AllGather, Phase::Forward), 1);
    EXPECT_EQ(countOps(iops, Collective::AllGather, Phase::Backward), 0);
    EXPECT_EQ(countOps(iops, Collective::ReduceScatter, Phase::Backward),
              0);
}

TEST_F(CommPlannerDlrm, TpEmitsBlockingActivationAllReduces)
{
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});
    CommPlanner planner(desc_, TaskSpec::preTraining(), plan, cluster_);

    std::vector<CommOp> ops = planner.planLayer(3);
    // TP partial sums (intra) fwd + bwd, DDP gradient AR (inter).
    const CommOp *fwd_ar =
        findOp(ops, Collective::AllReduce, Phase::Forward);
    ASSERT_NE(fwd_ar, nullptr);
    EXPECT_TRUE(fwd_ar->blocking);
    EXPECT_EQ(fwd_ar->scope, CommScope::Intra);
    // Activation volume: per-boundary partial sums x the TP group's
    // batch share (global batch / numNodes data-parallel ways).
    double per_sample = desc_.graph.layer(3).tpCommBytesPerSample(4.0);
    EXPECT_NEAR(fwd_ar->bytes,
                per_sample * desc_.globalBatchSize / cluster_.numNodes,
                1.0);

    int bwd_ars = countOps(ops, Collective::AllReduce, Phase::Backward);
    EXPECT_EQ(bwd_ars, 2); // TP input-grad AR + DDP weight-grad AR.

    // The DDP gradient AR operates on the TP-sharded tensor (P/8).
    bool found_inter = false;
    for (const CommOp &op : ops) {
        if (op.kind == Collective::AllReduce &&
            op.phase == Phase::Backward && op.scope == CommScope::Inter) {
            found_inter = true;
            EXPECT_FALSE(op.blocking);
            EXPECT_NEAR(op.bytes,
                        desc_.graph.layer(3).paramCount() * 4.0 / 8.0,
                        1.0);
        }
    }
    EXPECT_TRUE(found_inter);
}

TEST(CommPlannerMoe, ExpertParallelismEmitsDispatchAndCombine)
{
    ModelDesc desc = model_zoo::dlrmAMoe();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    ParallelPlan plan;
    plan.set(LayerClass::MoE, HierStrategy{Strategy::MP});
    CommPlanner planner(desc, TaskSpec::preTraining(), plan, cluster);

    int moe_idx = desc.graph.layersOfClass(LayerClass::MoE).front();
    std::vector<CommOp> ops = planner.planLayer(moe_idx);
    // Dispatch + combine forward, and both reversed in backward.
    EXPECT_EQ(countOps(ops, Collective::All2All, Phase::Forward), 2);
    EXPECT_EQ(countOps(ops, Collective::All2All, Phase::Backward), 2);
    for (const CommOp &op : ops)
        EXPECT_TRUE(op.blocking) << op.tag;

    // Inference keeps the forward routing only.
    CommPlanner inf(desc, TaskSpec::inference(), plan, cluster);
    std::vector<CommOp> iops = inf.planLayer(moe_idx);
    EXPECT_EQ(countOps(iops, Collective::All2All, Phase::Forward), 2);
    EXPECT_EQ(countOps(iops, Collective::All2All, Phase::Backward), 0);
}

TEST(CommPlannerLlm, FsdpBaselinePlansPerLayerGathers)
{
    ModelDesc desc = model_zoo::llama65b();
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    CommPlanner planner(desc, TaskSpec::preTraining(),
                        ParallelPlan::fsdpBaseline(), cluster);

    std::vector<CommOp> all = planner.planAll();
    int ags = countOps(all, Collective::AllGather, Phase::Forward);
    // One gather per layer: embedding + 80 x (attn + ffn).
    EXPECT_EQ(ags, desc.graph.numLayers());
    int rss = countOps(all, Collective::ReduceScatter, Phase::Backward);
    EXPECT_EQ(rss, desc.graph.numLayers());
}

TEST(CommPlannerLlm, ParamlessLayersEmitNothing)
{
    ModelDesc desc = model_zoo::dlrmA();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense, HierStrategy{Strategy::FSDP});
    CommPlanner planner(desc, TaskSpec::preTraining(), plan, cluster);
    // The interaction layer (index 2) has no parameters; FSDP should
    // not gather anything for it (TP would still reduce partial
    // activations, but FSDP is parameter-driven).
    std::vector<CommOp> ops = planner.planLayer(2);
    EXPECT_EQ(countOps(ops, Collective::AllGather, Phase::Forward), 0);
    EXPECT_EQ(countOps(ops, Collective::ReduceScatter, Phase::Backward),
              0);
}

TEST(CommPlannerLlm, SingleNodeClusterSkipsInterLevels)
{
    ModelDesc desc = model_zoo::dlrmA();
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem().withNumNodes(1);
    ParallelPlan plan;
    plan.set(LayerClass::BaseDense,
             HierStrategy{Strategy::TP, Strategy::DDP});
    CommPlanner planner(desc, TaskSpec::preTraining(), plan, cluster);
    for (const CommOp &op : planner.planLayer(3)) {
        // The inter level has group size 1: no ops land there.
        EXPECT_NE(op.scope, CommScope::Inter) << op.tag;
    }
}

TEST(Phase, Names)
{
    EXPECT_EQ(toString(Phase::Forward), "fwd");
    EXPECT_EQ(toString(Phase::Backward), "bwd");
}

} // namespace madmax
