#include <gtest/gtest.h>

#include "hw/hw_zoo.hh"
#include "parallel/sharding.hh"
#include "util/logging.hh"

namespace madmax
{

namespace
{

ClusterSpec
cluster16x8()
{
    return hw_zoo::dlrmTrainingSystem(); // 16 nodes x 8 devices.
}

} // namespace

TEST(Sharding, GlobalStrategies)
{
    ClusterSpec c = cluster16x8();

    ShardingInfo ddp = shardingFor(HierStrategy{Strategy::DDP}, c);
    EXPECT_DOUBLE_EQ(ddp.paramFraction, 1.0);
    EXPECT_EQ(ddp.dataParallelWays, 128);
    EXPECT_DOUBLE_EQ(ddp.transientParamFraction, 0.0);

    ShardingInfo fsdp = shardingFor(HierStrategy{Strategy::FSDP}, c);
    EXPECT_DOUBLE_EQ(fsdp.paramFraction, 1.0 / 128);
    EXPECT_EQ(fsdp.dataParallelWays, 128);
    // FSDP transiently materializes the gathered layer.
    EXPECT_NEAR(fsdp.transientParamFraction, 1.0 - 1.0 / 128, 1e-12);

    ShardingInfo tp = shardingFor(HierStrategy{Strategy::TP}, c);
    EXPECT_DOUBLE_EQ(tp.paramFraction, 1.0 / 128);
    EXPECT_EQ(tp.dataParallelWays, 1);

    ShardingInfo mp = shardingFor(HierStrategy{Strategy::MP}, c);
    EXPECT_DOUBLE_EQ(mp.paramFraction, 1.0 / 128);
    EXPECT_EQ(mp.dataParallelWays, 1);
}

TEST(Sharding, HierarchicalOrderMatters)
{
    // Insight 3: (TP, DDP) shards by devices-per-node, (DDP, TP)
    // shards by node count — different footprints on a 16x8 system.
    ClusterSpec c = cluster16x8();

    ShardingInfo tp_ddp =
        shardingFor(HierStrategy{Strategy::TP, Strategy::DDP}, c);
    EXPECT_DOUBLE_EQ(tp_ddp.paramFraction, 1.0 / 8);
    EXPECT_EQ(tp_ddp.dataParallelWays, 16);

    ShardingInfo ddp_tp =
        shardingFor(HierStrategy{Strategy::DDP, Strategy::TP}, c);
    EXPECT_DOUBLE_EQ(ddp_tp.paramFraction, 1.0 / 16);
    EXPECT_EQ(ddp_tp.dataParallelWays, 8);

    // With 16 nodes of 8 GPUs, (DDP, TP) achieves the lower
    // per-device footprint (the paper's example).
    EXPECT_LT(ddp_tp.paramFraction, tp_ddp.paramFraction);
}

TEST(Sharding, FsdpCombinations)
{
    ClusterSpec c = cluster16x8();

    // (FSDP, FSDP) collapses to global FSDP.
    ShardingInfo both =
        shardingFor(HierStrategy{Strategy::FSDP, Strategy::FSDP}, c);
    EXPECT_DOUBLE_EQ(both.paramFraction, 1.0 / 128);
    EXPECT_EQ(both.dataParallelWays, 128);

    // (FSDP, DDP): shard within node, replicate across nodes.
    ShardingInfo fd =
        shardingFor(HierStrategy{Strategy::FSDP, Strategy::DDP}, c);
    EXPECT_DOUBLE_EQ(fd.paramFraction, 1.0 / 8);
    EXPECT_EQ(fd.dataParallelWays, 128);
    // Transient: gathers up to full residency (non-FSDP level
    // replicates).
    EXPECT_NEAR(fd.transientParamFraction, 1.0 - 1.0 / 8, 1e-12);

    // (TP, FSDP): TP shards 1/8, FSDP shards the rest across nodes.
    ShardingInfo tf =
        shardingFor(HierStrategy{Strategy::TP, Strategy::FSDP}, c);
    EXPECT_DOUBLE_EQ(tf.paramFraction, 1.0 / 128);
    EXPECT_EQ(tf.dataParallelWays, 16);
    // Transient gathers back to the TP residency of 1/8.
    EXPECT_NEAR(tf.transientParamFraction, 1.0 / 8 - 1.0 / 128, 1e-12);
}

TEST(Sharding, MpCombinations)
{
    ClusterSpec c = cluster16x8();
    ShardingInfo mp_ddp =
        shardingFor(HierStrategy{Strategy::MP, Strategy::DDP}, c);
    // Tables sharded 8 ways in-node, replicated across nodes.
    EXPECT_DOUBLE_EQ(mp_ddp.paramFraction, 1.0 / 8);
    EXPECT_EQ(mp_ddp.dataParallelWays, 16);
}

TEST(Sharding, ParamFractionTimesDevicesAtLeastOne)
{
    // No strategy stores less than one full copy cluster-wide.
    ClusterSpec c = cluster16x8();
    for (Strategy intra :
         {Strategy::DDP, Strategy::FSDP, Strategy::TP, Strategy::MP}) {
        for (Strategy inter :
             {Strategy::None, Strategy::DDP, Strategy::FSDP, Strategy::TP,
              Strategy::MP}) {
            ShardingInfo info =
                shardingFor(HierStrategy{intra, inter}, c);
            EXPECT_GE(info.paramFraction * c.numDevices(), 1.0 - 1e-12)
                << HierStrategy{intra, inter}.toString();
            EXPECT_GE(info.dataParallelWays, 1);
            EXPECT_LE(info.dataParallelWays, c.numDevices());
        }
    }
}

TEST(Sharding, MissingIntraIsFatal)
{
    ClusterSpec c = cluster16x8();
    EXPECT_THROW(shardingFor(HierStrategy{Strategy::None}, c),
                 ConfigError);
}

} // namespace madmax
