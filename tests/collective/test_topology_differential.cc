/**
 * @file
 * Differential suite pinning the topology-aware collective model to
 * the flat model byte-for-byte: on TopologySpec::flatEquivalent every
 * (kind, scope, bytes) must price bitwise identically to the flat
 * CollectiveModel — across the hardware zoo, fixed corner sizes, and
 * seeded randomized log-uniform sweeps — and whole evaluation
 * pipelines (explore sweeps, delta re-evaluation) must produce
 * bit-identical PerfReports when a flat-equivalent topology is
 * attached to the cluster.
 *
 * Also holds the topology golden: a GPT-3 explore sweep on the
 * dc-pod-fleet preset, snapshotted in tests/golden/ and covered by
 * CI's golden-drift step.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "../golden_check.hh"
#include "collective/collective.hh"
#include "collective/topology_model.hh"
#include "core/eval_context.hh"
#include "core/strategy_explorer.hh"
#include "hw/hw_zoo.hh"
#include "hw/topology.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"
#include "util/strfmt.hh"

namespace madmax
{

namespace
{

const Collective kKinds[] = {
    Collective::AllReduce, Collective::AllGather,
    Collective::ReduceScatter, Collective::All2All,
    Collective::Broadcast};

const CommScope kScopes[] = {CommScope::Intra, CommScope::Inter,
                             CommScope::Global};

const AllReduceAlgorithm kAlgos[] = {AllReduceAlgorithm::Ring,
                                     AllReduceAlgorithm::Tree,
                                     AllReduceAlgorithm::Auto};

std::vector<ClusterSpec>
zooClusters()
{
    return {hw_zoo::dlrmTrainingSystem(), hw_zoo::llmTrainingSystem(),
            hw_zoo::awsP4d(16), hw_zoo::h100System()};
}

/** Corner sizes plus a seeded log-uniform sweep over ~10 decades. */
std::vector<double>
sweepSizes()
{
    std::vector<double> sizes = {0.0,    1.0,   2.0,    3.0,
                                 256.0,  4096.0, 65536.0, 1.0e6,
                                 1.5e8,  1.0e9, 7.77e9};
    std::mt19937_64 rng(0xD1FFull); // Fixed seed: reproducible sweep.
    std::uniform_real_distribution<double> u(0.0, 10.0);
    for (int i = 0; i < 500; ++i)
        sizes.push_back(std::pow(10.0, u(rng)));
    return sizes;
}

/** Bitwise equality on every non-timeline PerfReport field. */
void
expectBitIdentical(const PerfReport &a, const PerfReport &b,
                   const std::string &what)
{
    EXPECT_EQ(a.modelName, b.modelName) << what;
    EXPECT_EQ(a.taskName, b.taskName) << what;
    EXPECT_EQ(a.plan.toString(), b.plan.toString()) << what;
    EXPECT_EQ(a.plan.fsdpPrefetch, b.plan.fsdpPrefetch) << what;
    EXPECT_EQ(a.valid, b.valid) << what;
    EXPECT_EQ(a.memory.paramBytes, b.memory.paramBytes) << what;
    EXPECT_EQ(a.memory.gradBytes, b.memory.gradBytes) << what;
    EXPECT_EQ(a.memory.optimizerBytes, b.memory.optimizerBytes) << what;
    EXPECT_EQ(a.memory.activationBytes, b.memory.activationBytes)
        << what;
    EXPECT_EQ(a.memory.transientBytes, b.memory.transientBytes) << what;
    EXPECT_EQ(a.memory.usableCapacity, b.memory.usableCapacity) << what;
    EXPECT_EQ(a.iterationTime, b.iterationTime) << what;
    EXPECT_EQ(a.serializedTime, b.serializedTime) << what;
    EXPECT_EQ(a.computeTime, b.computeTime) << what;
    EXPECT_EQ(a.commTime, b.commTime) << what;
    EXPECT_EQ(a.exposedCommTime, b.exposedCommTime) << what;
    EXPECT_EQ(a.globalBatchSize, b.globalBatchSize) << what;
    EXPECT_EQ(a.contextLength, b.contextLength) << what;
    EXPECT_EQ(a.serializedBreakdown, b.serializedBreakdown) << what;
    EXPECT_EQ(a.exposedBreakdown, b.exposedBreakdown) << what;
    // Timelines: identical schedule, event for event.
    ASSERT_EQ(a.timeline.events.size(), b.timeline.events.size()) << what;
    EXPECT_EQ(a.timeline.makespan, b.timeline.makespan) << what;
    for (size_t i = 0; i < a.timeline.events.size(); ++i) {
        const ScheduledEvent &ea = a.timeline.events[i];
        const ScheduledEvent &eb = b.timeline.events[i];
        EXPECT_EQ(ea.start, eb.start) << what << " event " << i;
        EXPECT_EQ(ea.finish, eb.finish) << what << " event " << i;
        EXPECT_EQ(ea.event.name, eb.event.name) << what << " event " << i;
        EXPECT_EQ(ea.event.duration, eb.event.duration)
            << what << " event " << i;
    }
}

} // namespace

// The heart of the tentpole contract: on the flat-equivalent topology
// every (kind, scope, bytes, algorithm) prices bitwise identical to
// the flat closed forms, across the model zoo.
TEST(TopologyDifferential, FlatEquivalentIsBitwiseIdenticalAcrossZoo)
{
    const std::vector<double> sizes = sweepSizes();
    for (const ClusterSpec &cluster : zooClusters()) {
        for (AllReduceAlgorithm algo : kAlgos) {
            CollectiveModel flat(cluster, CollectiveLatency{}, algo);
            TopologyCollectiveModel topo(
                TopologySpec::flatEquivalent(cluster),
                CollectiveLatency{}, algo);
            for (CommScope scope : kScopes) {
                ASSERT_EQ(flat.groupSize(scope), topo.groupSize(scope))
                    << cluster.name;
            }
            for (Collective kind : kKinds) {
                for (CommScope scope : kScopes) {
                    for (double bytes : sizes) {
                        const double want =
                            flat.time(kind, scope, bytes);
                        // EXPECT_EQ on doubles is exact — any ULP of
                        // drift between the recursion and the closed
                        // form fails here.
                        EXPECT_EQ(want, topo.time(kind, scope, bytes))
                            << cluster.name << " "
                            << toString(kind) << " " << toString(scope)
                            << " algo=" << toString(algo)
                            << strfmt(" bytes=%.17g", bytes);
                        EXPECT_EQ(want,
                                  topo.estimate(kind, scope, bytes)
                                      .seconds)
                            << "estimate() drifted from time()";
                    }
                }
            }
        }
    }
}

// Custom latency constants follow the same equivalence (the inherit
// path of TopologyLevel::linkLatency < 0).
TEST(TopologyDifferential, FlatEquivalentHonorsCustomLatency)
{
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    CollectiveLatency lat{3.3e-6, 1.1e-5};
    CollectiveModel flat(cluster, lat);
    TopologyCollectiveModel topo(TopologySpec::flatEquivalent(cluster),
                                 lat);
    for (Collective kind : kKinds) {
        for (CommScope scope : kScopes) {
            for (double bytes : {1.0, 4096.0, 1e7, 3e9}) {
                EXPECT_EQ(flat.time(kind, scope, bytes),
                          topo.time(kind, scope, bytes))
                    << toString(kind) << " " << toString(scope);
            }
        }
    }
}

// End-to-end: a full explore() sweep on a cluster carrying the
// flat-equivalent topology (which auto-selects the topology model)
// produces reports bit-identical to the flat default, rank by rank.
TEST(TopologyDifferential, ExploreSweepBitIdenticalToFlat)
{
    ModelDesc desc = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    ExplorerOptions opts;
    opts.explorePrefetch = true;

    ClusterSpec flat_cluster = hw_zoo::dlrmTrainingSystem();
    ClusterSpec topo_cluster = hw_zoo::withTopology(
        flat_cluster, TopologySpec::flatEquivalent(flat_cluster));

    PerfModel flat_model(flat_cluster);
    PerfModel topo_model(topo_cluster);
    Exploration flat_ex =
        StrategyExplorer(flat_model).explore(desc, task, opts);
    Exploration topo_ex =
        StrategyExplorer(topo_model).explore(desc, task, opts);

    ASSERT_EQ(flat_ex.results.size(), topo_ex.results.size());
    for (size_t i = 0; i < flat_ex.results.size(); ++i) {
        expectBitIdentical(flat_ex.results[i].report,
                           topo_ex.results[i].report,
                           "rank " + std::to_string(i));
        if (::testing::Test::HasFailure())
            break;
    }
}

// The delta-evaluation path prices through the same identity-keyed
// memo: full and incremental evaluation stay bit-identical on a
// topology-carrying cluster.
TEST(TopologyDifferential, DeltaEvalBitIdenticalOnTopologyCluster)
{
    ClusterSpec cluster = hw_zoo::withTopology(
        hw_zoo::dlrmTrainingSystem(),
        hw_zoo::dcRailTopology(hw_zoo::dlrmTrainingSystem()));
    PerfModelOptions opts;
    opts.keepTimeline = false; // Delta path requirement.
    PerfModel model(cluster, opts);
    ModelDesc desc = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();
    EvalContext ctx(model, desc, task);
    EXPECT_EQ(ctx.collectives().name(), "topology");

    EvalContext::DeltaState state;
    std::vector<ParallelPlan> plans;
    {
        ParallelPlan p;
        p.set(LayerClass::SparseEmbedding, HierStrategy{Strategy::MP});
        p.set(LayerClass::BaseDense,
              HierStrategy{Strategy::TP, Strategy::DDP});
        plans.push_back(p);
        p.set(LayerClass::BaseDense,
              HierStrategy{Strategy::FSDP, Strategy::DDP});
        plans.push_back(p);
        p.fsdpPrefetch = true;
        plans.push_back(p);
        plans.push_back(ParallelPlan::fsdpBaseline());
    }
    for (size_t i = 0; i < plans.size(); ++i) {
        PerfReport full = ctx.evaluate(plans[i]);
        PerfReport delta = ctx.evaluateDelta(state, plans[i]);
        expectBitIdentical(full, delta, "plan " + std::to_string(i));
    }
}

// Regression for the memo-aliasing latent issue: models that can
// disagree on a (kind, scope, bytes) triple must never share an
// identity — including the flat model vs its bit-identical topology
// twin (same prices today, different formulas tomorrow).
TEST(TopologyDifferential, ModelIdentitiesNeverAlias)
{
    ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    CollectiveModel flat(cluster);
    TopologyCollectiveModel flat_topo(
        TopologySpec::flatEquivalent(cluster));
    TopologyCollectiveModel rail(hw_zoo::dcRailTopology(cluster));
    TopologyCollectiveModel podfleet(
        hw_zoo::dcPodFleetTopology(cluster));

    EXPECT_NE(flat.identity(), flat_topo.identity());
    EXPECT_NE(flat_topo.identity(), rail.identity());
    EXPECT_NE(rail.identity(), podfleet.identity());

    // Deterministic: same spec, same identity.
    TopologyCollectiveModel flat_topo2(
        TopologySpec::flatEquivalent(cluster));
    EXPECT_EQ(flat_topo.identity(), flat_topo2.identity());

    // Different algorithm choice can change prices -> new identity.
    CollectiveModel flat_ring(cluster, CollectiveLatency{},
                              AllReduceAlgorithm::Ring);
    EXPECT_NE(flat.identity(), flat_ring.identity());

    // A bandwidth tweak anywhere in the stack changes the fingerprint.
    TopologySpec tweaked = TopologySpec::flatEquivalent(cluster);
    tweaked.levels[1].linkBandwidth *= 1.0000000001;
    EXPECT_NE(TopologySpec::flatEquivalent(cluster).fingerprint(),
              tweaked.fingerprint());
}

TEST(TopologyDifferential, RegistryAndSelection)
{
    std::vector<std::string> names = collectiveModelNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "flat"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "topology"),
              names.end());

    ClusterSpec flat_cluster = hw_zoo::dlrmTrainingSystem();
    ClusterSpec topo_cluster = hw_zoo::withTopology(
        flat_cluster, hw_zoo::dcRailTopology(flat_cluster));

    EXPECT_EQ(makeCollectiveModelFor(flat_cluster)->name(), "flat");
    EXPECT_EQ(makeCollectiveModelFor(topo_cluster)->name(), "topology");
    // Explicit override beats auto-selection.
    EXPECT_EQ(makeCollectiveModelFor(topo_cluster, CollectiveLatency{},
                                     AllReduceAlgorithm::Auto, "flat")
                  ->name(),
              "flat");
    EXPECT_THROW(makeCollectiveModel("no-such-model", flat_cluster),
                 ConfigError);
    // The topology factory needs a topology to price.
    EXPECT_THROW(makeCollectiveModel("topology", flat_cluster),
                 ConfigError);
}

namespace
{

/** Non-timeline report fields, doubles rendered %.17g. */
std::string
dumpReport(const PerfReport &r)
{
    std::string out;
    out += "model=" + r.modelName + " cluster=" + r.clusterName +
        " task=" + r.taskName + "\n";
    out += "plan=" + r.plan.toString() +
        strfmt(" prefetch=%d valid=%d gbs=%ld ctx=%ld\n",
               r.plan.fsdpPrefetch ? 1 : 0, r.valid ? 1 : 0,
               r.globalBatchSize, r.contextLength);
    out += strfmt("time iter=%.17g ser=%.17g comp=%.17g comm=%.17g "
                  "exp=%.17g\n",
                  r.iterationTime, r.serializedTime, r.computeTime,
                  r.commTime, r.exposedCommTime);
    out += "sbd";
    for (const auto &[cat, sec] : r.serializedBreakdown)
        out += strfmt(" %s=%.17g", toString(cat).c_str(), sec);
    out += "\nebd";
    for (const auto &[cat, sec] : r.exposedBreakdown)
        out += strfmt(" %s=%.17g", toString(cat).c_str(), sec);
    out += "\n";
    return out;
}

} // namespace

// Golden for a topology-enabled sweep: GPT-3 explore on the LLM
// system under the dc-pod-fleet preset. Pins the topology model's
// actual (non-flat) numbers; CI's golden-drift step regenerates and
// diffs it like every other golden.
TEST(TopologyGolden, Gpt3PodFleetSweep)
{
    ClusterSpec cluster = hw_zoo::llmTrainingSystem();
    cluster = hw_zoo::withTopology(cluster,
                                   hw_zoo::dcPodFleetTopology(cluster));
    PerfModel model(cluster);
    Exploration ex = StrategyExplorer(model).explore(
        model_zoo::gpt3(), TaskSpec::preTraining(), ExplorerOptions{});

    std::string out = strfmt("results=%zu\n", ex.results.size());
    for (size_t i = 0; i < ex.results.size(); ++i) {
        out += strfmt("== rank %03zu ==\n", i);
        out += dumpReport(ex.results[i].report);
    }
    testing::checkGolden("topology_gpt3_podfleet.txt", out);
}

} // namespace madmax
