/**
 * @file
 * Property suite for the topology-aware collective model
 * (collective/topology_model.hh). Where the differential suite pins
 * the flat-equivalent spec bitwise, this one pins the *shape* of the
 * cost surface on arbitrary tier stacks:
 *
 *  - more bytes never prices faster, on any (kind, scope);
 *  - slowing any one tier's links never prices faster;
 *  - hierarchical AllReduce at Global scope never loses to a flat
 *    single-ring (or tree) reference built from the stack's slowest
 *    effective link and largest alpha;
 *  - congestion (estimateCongested) never decreases completion time,
 *    and concurrent == 1 is estimate() bit for bit;
 *  - the reported algorithm matches the documented selection rules;
 *  - malformed specs and arguments fail loudly with ConfigError.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "collective/topology_model.hh"
#include "hw/hw_zoo.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace madmax
{

using namespace units;

namespace
{

const Collective kKinds[] = {
    Collective::AllReduce,   Collective::AllGather,
    Collective::ReduceScatter, Collective::All2All,
    Collective::Broadcast,
};

const CommScope kScopes[] = {
    CommScope::Intra, CommScope::Inter, CommScope::Global,
};

/** A random 2..4-tier stack with explicit latencies everywhere, so
 *  the resolved alphas are exactly the spec's values. */
TopologySpec
randomSpec(std::mt19937_64 &rng)
{
    std::uniform_int_distribution<int> num_levels(2, 4);
    std::uniform_int_distribution<int> fan(1, 8);
    std::uniform_real_distribution<double> log_bw(8.0, 11.5);
    std::uniform_real_distribution<double> latency(0.0, 2e-5);
    std::uniform_int_distribution<int> rails(1, 4);
    std::uniform_real_distribution<double> sharers(1.0, 4.0);

    TopologySpec t;
    t.name = "random";
    const int n = num_levels(rng);
    for (int i = 0; i < n; ++i) {
        TopologyLevel lv;
        lv.name = "t" + std::to_string(i);
        lv.fan = i == 0 ? std::max(2, fan(rng)) : fan(rng);
        lv.linkBandwidth = std::pow(10.0, log_bw(rng));
        lv.linkLatency = latency(rng);
        lv.rails = rails(rng);
        lv.sharers = sharers(rng);
        t.levels.push_back(lv);
    }
    return t;
}

/** Random message sizes spanning the latency- to bandwidth-bound
 *  regimes (plus the 0 and 1 byte edges). */
std::vector<double>
randomBytes(std::mt19937_64 &rng, int count)
{
    std::uniform_real_distribution<double> exponent(0.0, 10.0);
    std::vector<double> out = {0.0, 1.0};
    for (int i = 0; i < count; ++i)
        out.push_back(std::pow(10.0, exponent(rng)));
    std::sort(out.begin(), out.end());
    return out;
}

double
resolvedAlpha(const TopologyLevel &lv, size_t level,
              CollectiveLatency latency)
{
    if (lv.linkLatency >= 0.0)
        return lv.linkLatency;
    return level == 0 ? latency.intraAlpha : latency.interAlpha;
}

/**
 * The flat single-tier stack a hierarchical decomposition must beat:
 * all devices in one ring on the stack's slowest effective link,
 * paying the stack's largest alpha per step. (Level 1 with fan 1 only
 * satisfies the >= 2-level invariant; it prices to zero.)
 */
TopologySpec
flatReference(const TopologySpec &subject, CollectiveLatency latency)
{
    double min_bw = std::numeric_limits<double>::infinity();
    double max_alpha = 0.0;
    for (size_t i = 0; i < subject.levels.size(); ++i) {
        const TopologyLevel &lv = subject.levels[i];
        if (lv.fan <= 1)
            continue;
        min_bw = std::min(min_bw, lv.effBandwidth());
        max_alpha = std::max(max_alpha, resolvedAlpha(lv, i, latency));
    }
    TopologySpec ref;
    ref.name = "flat-reference";
    ref.levels.push_back(TopologyLevel{
        "all", subject.totalDevices(), min_bw, max_alpha, 1, 1.0});
    ref.levels.push_back(TopologyLevel{"top", 1, 0.0, 0.0, 1, 1.0});
    return ref;
}

} // namespace

// More bytes can never price faster: every closed form is a sum of
// terms linear in the message size with non-negative rates, and Auto
// takes a min of two such terms. Exact (not epsilon) comparisons:
// IEEE rounding is monotone, so the property holds in floating point
// too.
TEST(TopologyProperties, MoreBytesNeverFaster)
{
    std::mt19937_64 rng(0xB17E5ull);
    for (int trial = 0; trial < 40; ++trial) {
        const TopologySpec spec = randomSpec(rng);
        const TopologyCollectiveModel model(spec);
        const std::vector<double> sizes = randomBytes(rng, 12);
        for (Collective kind : kKinds) {
            for (CommScope scope : kScopes) {
                double prev = 0.0;
                for (double bytes : sizes) {
                    const double t = model.time(kind, scope, bytes);
                    EXPECT_GE(t, prev)
                        << toString(kind) << "/" << toString(scope)
                        << " at " << bytes << "B (trial " << trial
                        << ")";
                    prev = t;
                }
            }
        }
    }
}

// Halving any single tier's link bandwidth can never price faster.
TEST(TopologyProperties, SlowerLinkNeverFaster)
{
    std::mt19937_64 rng(0x510Bull);
    for (int trial = 0; trial < 25; ++trial) {
        const TopologySpec spec = randomSpec(rng);
        const TopologyCollectiveModel base(spec);
        const std::vector<double> sizes = randomBytes(rng, 6);
        for (size_t level = 0; level < spec.levels.size(); ++level) {
            TopologySpec slowed = spec;
            slowed.levels[level].linkBandwidth /= 2.0;
            const TopologyCollectiveModel slow(slowed);
            for (Collective kind : kKinds) {
                for (CommScope scope : kScopes) {
                    for (double bytes : sizes) {
                        EXPECT_GE(slow.time(kind, scope, bytes),
                                  base.time(kind, scope, bytes))
                            << toString(kind) << "/" << toString(scope)
                            << " at " << bytes << "B, level " << level
                            << " halved (trial " << trial << ")";
                    }
                }
            }
        }
    }
}

// The hierarchical Global AllReduce never loses to pricing the whole
// group as one flat ring (or tree) on the stack's slowest effective
// link with its largest alpha. The ring bound is exact: the per-tier
// shard volumes telescope to (n-1)/n of the tensor, and the ring
// steps sum to at most n-1; the slack only absorbs floating-point
// reassociation.
TEST(TopologyProperties, HierarchicalBeatsFlatReference)
{
    const CollectiveLatency latency{};
    std::vector<TopologySpec> specs;
    std::mt19937_64 rng(0x41E2ull);
    for (int trial = 0; trial < 30; ++trial)
        specs.push_back(randomSpec(rng));
    specs.push_back(
        hw_zoo::dcRailTopology(hw_zoo::dlrmTrainingSystem()));
    specs.push_back(
        hw_zoo::dcPodFleetTopology(hw_zoo::llmTrainingSystem()));

    for (const TopologySpec &spec : specs) {
        const TopologyCollectiveModel subject(spec, latency);
        const TopologySpec ref = flatReference(spec, latency);
        const TopologyCollectiveModel ring_ref(
            ref, latency, AllReduceAlgorithm::Ring);
        const TopologyCollectiveModel tree_ref(
            ref, latency, AllReduceAlgorithm::Tree);
        for (double bytes : {1.0, 4096.0, 1e6, 1e9}) {
            const double hier =
                subject.time(Collective::AllReduce, CommScope::Global,
                             bytes);
            const double ring = ring_ref.time(
                Collective::AllReduce, CommScope::Intra, bytes);
            const double tree = tree_ref.time(
                Collective::AllReduce, CommScope::Intra, bytes);
            EXPECT_LE(hier, std::max(ring, tree) * (1.0 + 1e-9))
                << spec.name << " at " << bytes << "B";
        }
    }
}

// estimateCongested: completion time is non-decreasing in the number
// of concurrent collectives, and concurrent == 1 is estimate() bit
// for bit (so the congested path cannot drift from the memoized one).
TEST(TopologyProperties, CongestionNeverDecreasesTime)
{
    std::mt19937_64 rng(0xC0146ull);
    for (int trial = 0; trial < 25; ++trial) {
        const TopologySpec spec = randomSpec(rng);
        const TopologyCollectiveModel model(spec);
        const std::vector<double> sizes = randomBytes(rng, 6);
        for (Collective kind : kKinds) {
            for (CommScope scope : kScopes) {
                for (double bytes : sizes) {
                    const CollectiveEstimate uncongested =
                        model.estimate(kind, scope, bytes);
                    const CollectiveEstimate unit =
                        model.estimateCongested(kind, scope, bytes, 1.0);
                    EXPECT_EQ(unit.seconds, uncongested.seconds);
                    EXPECT_EQ(unit.algo, uncongested.algo);
                    double prev = unit.seconds;
                    for (double concurrent : {1.5, 2.0, 8.0}) {
                        const double t =
                            model
                                .estimateCongested(kind, scope, bytes,
                                                   concurrent)
                                .seconds;
                        EXPECT_GE(t, prev)
                            << toString(kind) << "/" << toString(scope)
                            << " at " << bytes << "B, " << concurrent
                            << " concurrent";
                        prev = t;
                    }
                }
            }
        }
    }
}

// The reported algorithm follows the documented selection rules on
// the flat-equivalent two-tier stack (d = 8, m = 16).
TEST(TopologyProperties, AlgorithmSelectionRules)
{
    const ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    const TopologySpec spec = TopologySpec::flatEquivalent(cluster);
    const TopologyCollectiveModel model(spec);

    // Auto AllReduce within one tier: tiny messages are latency-bound
    // (tree), large ones bandwidth-bound (ring).
    EXPECT_EQ(model.estimate(Collective::AllReduce, CommScope::Intra,
                             64.0)
                  .algo,
              CollAlgo::Tree);
    EXPECT_EQ(model.estimate(Collective::AllReduce, CommScope::Intra,
                             gb(1))
                  .algo,
              CollAlgo::Ring);
    // Multi-tier AllReduce decomposes hierarchically regardless of
    // size.
    EXPECT_EQ(model.estimate(Collective::AllReduce, CommScope::Global,
                             gb(1))
                  .algo,
              CollAlgo::Hierarchical);
    // AllGather / ReduceScatter: ring within a tier, hierarchical
    // across tiers.
    EXPECT_EQ(model.estimate(Collective::AllGather, CommScope::Intra,
                             mb(1))
                  .algo,
              CollAlgo::Ring);
    EXPECT_EQ(model.estimate(Collective::AllGather, CommScope::Global,
                             mb(1))
                  .algo,
              CollAlgo::Hierarchical);
    EXPECT_EQ(model.estimate(Collective::ReduceScatter,
                             CommScope::Inter, mb(1))
                  .algo,
              CollAlgo::Ring);
    // All2All is point-to-point Send/Recv; Broadcast a pipelined tree.
    EXPECT_EQ(model.estimate(Collective::All2All, CommScope::Global,
                             mb(1))
                  .algo,
              CollAlgo::PointToPoint);
    EXPECT_EQ(model.estimate(Collective::Broadcast, CommScope::Intra,
                             mb(1))
                  .algo,
              CollAlgo::Tree);
    // Zero-byte and single-device collectives report no algorithm.
    EXPECT_EQ(model.estimate(Collective::AllReduce, CommScope::Intra,
                             0.0)
                  .algo,
              CollAlgo::None);

    // A forced algorithm overrides the tuner.
    const TopologyCollectiveModel ring_model(
        spec, CollectiveLatency{}, AllReduceAlgorithm::Ring);
    EXPECT_EQ(ring_model
                  .estimate(Collective::AllReduce, CommScope::Intra,
                            64.0)
                  .algo,
              CollAlgo::Ring);
}

// Malformed specs and arguments must fail loudly, not price garbage.
TEST(TopologyProperties, ValidationErrors)
{
    const TopologyLevel node{"node", 8, gBps(240), -1.0, 1, 1.0};
    const TopologyLevel fabric{"fabric", 16, gBps(16), -1.0, 1, 1.0};

    {
        TopologySpec t; // One level is below the 2..8 invariant.
        t.levels = {node};
        EXPECT_THROW(t.validate(), ConfigError);
    }
    {
        TopologySpec t; // Nine levels exceed it.
        t.levels.assign(9, fabric);
        t.levels[0] = node;
        EXPECT_THROW(t.validate(), ConfigError);
    }
    {
        TopologySpec t = {"bad-fan", {node, fabric}};
        t.levels[1].fan = 0;
        EXPECT_THROW(t.validate(), ConfigError);
    }
    {
        TopologySpec t = {"no-bw", {node, fabric}};
        t.levels[1].linkBandwidth = 0.0; // fan > 1 needs links.
        EXPECT_THROW(t.validate(), ConfigError);
    }
    {
        TopologySpec t = {"bad-rails", {node, fabric}};
        t.levels[0].rails = 0;
        EXPECT_THROW(t.validate(), ConfigError);
    }
    {
        TopologySpec t = {"bad-sharers", {node, fabric}};
        t.levels[1].sharers = 0.5;
        EXPECT_THROW(t.validate(), ConfigError);
    }

    // Shape mismatches against the owning cluster.
    const ClusterSpec cluster = hw_zoo::dlrmTrainingSystem();
    {
        TopologySpec t = TopologySpec::flatEquivalent(cluster);
        t.levels[0].fan = 4; // != devicesPerNode.
        EXPECT_THROW(t.validateAgainst(cluster), ConfigError);
    }
    {
        TopologySpec t = TopologySpec::flatEquivalent(cluster);
        t.levels[1].fan = 15; // Scale-out product != numNodes.
        EXPECT_THROW(t.validateAgainst(cluster), ConfigError);
        EXPECT_THROW(hw_zoo::withTopology(cluster, t), ConfigError);
    }

    // Bad pricing arguments.
    const TopologyCollectiveModel model(
        TopologySpec::flatEquivalent(cluster));
    EXPECT_THROW(
        model.time(Collective::AllReduce, CommScope::Global, -1.0),
        ConfigError);
    EXPECT_THROW(model.estimateCongested(Collective::AllReduce,
                                         CommScope::Global, mb(1), 0.5),
                 ConfigError);
    EXPECT_THROW(
        model.estimateCongested(
            Collective::AllReduce, CommScope::Global, mb(1),
            std::numeric_limits<double>::quiet_NaN()),
        ConfigError);
}

} // namespace madmax
