#include <gtest/gtest.h>

#include "collective/collective.hh"
#include "hw/hw_zoo.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace madmax
{

using namespace units;

namespace
{

/** 16 nodes x 8 devices, clean bandwidths, zero latency. */
CollectiveModel
idealModel(int nodes = 16, int devs = 8)
{
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    c.numNodes = nodes;
    c.devicesPerNode = devs;
    c.util.intraLink = 1.0;
    c.util.interLink = 1.0;
    c.device.intraNodeBandwidth = gBps(300);
    c.device.interNodeBandwidth = gBps(25);
    return CollectiveModel(c, CollectiveLatency{0.0, 0.0});
}

} // namespace

TEST(CollectiveModel, GroupSizes)
{
    CollectiveModel m = idealModel();
    EXPECT_EQ(m.groupSize(CommScope::Intra), 8);
    EXPECT_EQ(m.groupSize(CommScope::Inter), 16);
    EXPECT_EQ(m.groupSize(CommScope::Global), 128);
}

TEST(CollectiveModel, IntraRingClosedForms)
{
    CollectiveModel m = idealModel();
    const double T = gb(1);
    // AllGather/ReduceScatter: T*(g-1)/g / bw.
    EXPECT_NEAR(m.time(Collective::AllGather, CommScope::Intra, T),
                T * 7.0 / 8.0 / gBps(300), 1e-9);
    EXPECT_NEAR(m.time(Collective::ReduceScatter, CommScope::Intra, T),
                T * 7.0 / 8.0 / gBps(300), 1e-9);
    // AllReduce: 2x.
    EXPECT_NEAR(m.time(Collective::AllReduce, CommScope::Intra, T),
                2.0 * T * 7.0 / 8.0 / gBps(300), 1e-9);
}

TEST(CollectiveModel, InterRingClosedForms)
{
    CollectiveModel m = idealModel();
    const double T = gb(1);
    EXPECT_NEAR(m.time(Collective::AllGather, CommScope::Inter, T),
                T * 15.0 / 16.0 / gBps(25), 1e-9);
    EXPECT_NEAR(m.time(Collective::AllReduce, CommScope::Inter, T),
                2.0 * T * 15.0 / 16.0 / gBps(25), 1e-9);
}

TEST(CollectiveModel, GlobalAllReduceIsHierarchical)
{
    // RS intra + AR inter on the 1/d shard + AG intra (§IV-C:
    // effective bandwidth is a ratio of the two fabrics).
    CollectiveModel m = idealModel();
    const double T = gb(1);
    double expected = T * 7.0 / 8.0 / gBps(300)             // RS intra
        + 2.0 * (T / 8.0) * 15.0 / 16.0 / gBps(25)          // AR inter
        + T * 7.0 / 8.0 / gBps(300);                        // AG intra
    EXPECT_NEAR(m.time(Collective::AllReduce, CommScope::Global, T),
                expected, 1e-9);
}

TEST(CollectiveModel, GlobalAllGatherUsesRailParallelism)
{
    // The d rails each carry a 1/d stripe across nodes; NIC traffic
    // is T/d per device, not T.
    CollectiveModel m = idealModel();
    const double T = gb(1);
    double expected = (T / 8.0) * 15.0 / 16.0 / gBps(25)
        + T * 7.0 / 8.0 / gBps(300);
    EXPECT_NEAR(m.time(Collective::AllGather, CommScope::Global, T),
                expected, 1e-9);
    EXPECT_NEAR(m.time(Collective::ReduceScatter, CommScope::Global, T),
                expected, 1e-9);
}

TEST(CollectiveModel, All2AllBoundBySlowestFabric)
{
    // §IV-C: NCCL All2All is point-to-point Send/Recv, bound by the
    // slowest interconnect spanned.
    CollectiveModel m = idealModel();
    const double T = gb(1);
    double t = m.time(Collective::All2All, CommScope::Global, T);
    EXPECT_NEAR(t, T * 127.0 / 128.0 / gBps(25), 1e-9);

    // On a single-node system the same collective rides NVLink.
    CollectiveModel single = idealModel(1, 8);
    double t1 = single.time(Collective::All2All, CommScope::Global, T);
    EXPECT_NEAR(t1, T * 7.0 / 8.0 / gBps(300), 1e-9);
}

TEST(CollectiveModel, DegenerateGroupsAreFree)
{
    CollectiveModel single = idealModel(1, 8);
    // One node: inter collectives cost nothing.
    EXPECT_DOUBLE_EQ(
        single.time(Collective::AllReduce, CommScope::Inter, gb(1)), 0.0);

    CollectiveModel one_dev = idealModel(16, 1);
    EXPECT_DOUBLE_EQ(
        one_dev.time(Collective::AllGather, CommScope::Intra, gb(1)), 0.0);

    CollectiveModel m = idealModel();
    EXPECT_DOUBLE_EQ(
        m.time(Collective::AllReduce, CommScope::Global, 0.0), 0.0);
}

TEST(CollectiveModel, NegativeBytesAreFatal)
{
    CollectiveModel m = idealModel();
    EXPECT_THROW(m.time(Collective::AllReduce, CommScope::Global, -1.0),
                 ConfigError);
}

TEST(CollectiveModel, TimeScalesLinearlyInBytes)
{
    CollectiveModel m = idealModel();
    for (Collective kind :
         {Collective::AllReduce, Collective::AllGather,
          Collective::ReduceScatter, Collective::All2All}) {
        double t1 = m.time(kind, CommScope::Global, gb(1));
        double t2 = m.time(kind, CommScope::Global, gb(2));
        EXPECT_NEAR(t2 / t1, 2.0, 1e-9) << toString(kind);
    }
}

TEST(CollectiveModel, MoreBandwidthNeverHurts)
{
    ClusterSpec base = hw_zoo::dlrmTrainingSystem();
    CollectiveModel slow(base);
    CollectiveModel fast_inter(base.withInterBandwidthScale(4.0));
    CollectiveModel fast_intra(base.withIntraBandwidthScale(4.0));
    for (Collective kind :
         {Collective::AllReduce, Collective::AllGather,
          Collective::ReduceScatter, Collective::All2All,
          Collective::Broadcast}) {
        for (CommScope scope :
             {CommScope::Intra, CommScope::Inter, CommScope::Global}) {
            double t = slow.time(kind, scope, gb(1));
            EXPECT_LE(fast_inter.time(kind, scope, gb(1)), t + 1e-12)
                << toString(kind) << " " << toString(scope);
            EXPECT_LE(fast_intra.time(kind, scope, gb(1)), t + 1e-12)
                << toString(kind) << " " << toString(scope);
        }
    }
}

TEST(CollectiveModel, LatencyTermAddsPerStepCost)
{
    ClusterSpec c = hw_zoo::dlrmTrainingSystem();
    CollectiveModel zero(c, CollectiveLatency{0.0, 0.0},
                         AllReduceAlgorithm::Ring);
    CollectiveModel lat(c, CollectiveLatency{1e-6, 10e-6},
                        AllReduceAlgorithm::Ring);
    // Tiny message: latency dominates.
    double t0 = zero.time(Collective::AllReduce, CommScope::Inter, 8.0);
    double t1 = lat.time(Collective::AllReduce, CommScope::Inter, 8.0);
    EXPECT_GT(t1, t0);
    // 2*(m-1) ring steps at 10us.
    EXPECT_NEAR(t1 - t0, 2.0 * 15 * 10e-6, 1e-9);
}

TEST(CollectiveModel, TreeBeatsRingOnLatencyLosesOnBandwidth)
{
    // §IV-C: the effective bandwidth depends on the NCCL algorithm
    // (ring vs tree). Tree wins for tiny messages on big groups;
    // ring wins for bulk transfers.
    ClusterSpec c = hw_zoo::llmTrainingSystem(); // 256 nodes.
    CollectiveModel ring(c, CollectiveLatency{}, AllReduceAlgorithm::Ring);
    CollectiveModel tree(c, CollectiveLatency{}, AllReduceAlgorithm::Tree);
    CollectiveModel autosel(c, CollectiveLatency{},
                            AllReduceAlgorithm::Auto);

    // 1 KB across 256 nodes: ring pays 2*255 alpha steps.
    double small_ring =
        ring.time(Collective::AllReduce, CommScope::Inter, kb(1));
    double small_tree =
        tree.time(Collective::AllReduce, CommScope::Inter, kb(1));
    EXPECT_LT(small_tree, small_ring);

    // 1 GB: the ring's (g-1)/g volume factor wins.
    double big_ring =
        ring.time(Collective::AllReduce, CommScope::Inter, gb(1));
    double big_tree =
        tree.time(Collective::AllReduce, CommScope::Inter, gb(1));
    EXPECT_LT(big_ring, big_tree);

    // Auto is never worse than either.
    for (double bytes : {kb(1), mb(1), gb(1)}) {
        double t = autosel.time(Collective::AllReduce, CommScope::Inter,
                                bytes);
        EXPECT_LE(t,
                  ring.time(Collective::AllReduce, CommScope::Inter,
                            bytes) +
                      1e-15);
        EXPECT_LE(t,
                  tree.time(Collective::AllReduce, CommScope::Inter,
                            bytes) +
                      1e-15);
    }
    EXPECT_EQ(toString(AllReduceAlgorithm::Auto), "auto");
    EXPECT_EQ(toString(AllReduceAlgorithm::Tree), "tree");
}

TEST(CollectiveModel, EffectiveBandwidthDiagnostic)
{
    CollectiveModel m = idealModel();
    const double T = gb(1);
    double bw =
        m.effectiveBandwidth(Collective::AllGather, CommScope::Inter, T);
    EXPECT_NEAR(bw, gBps(25) * 16.0 / 15.0, kb(1));
    EXPECT_DOUBLE_EQ(
        m.effectiveBandwidth(Collective::AllGather, CommScope::Inter, 0.0),
        0.0);
}

TEST(CollectiveModel, Names)
{
    EXPECT_EQ(toString(Collective::AllReduce), "AllReduce");
    EXPECT_EQ(toString(Collective::All2All), "All2All");
    EXPECT_EQ(toString(CommScope::Global), "global");
}

// Property sweep: hierarchical global collectives should never beat
// the pure-intra cost of the same tensor (the NIC phase adds work),
// and doubling node count should not reduce any cost.
class CollectiveScaling : public ::testing::TestWithParam<int>
{
};

TEST_P(CollectiveScaling, MonotoneInNodeCount)
{
    int nodes = GetParam();
    CollectiveModel small = idealModel(nodes);
    CollectiveModel large = idealModel(nodes * 2);
    const double T = gb(1);
    for (Collective kind :
         {Collective::AllReduce, Collective::AllGather,
          Collective::All2All}) {
        EXPECT_LE(small.time(kind, CommScope::Global, T),
                  large.time(kind, CommScope::Global, T) + 1e-12)
            << toString(kind) << " nodes=" << nodes;
    }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, CollectiveScaling,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

} // namespace madmax
