#include <gtest/gtest.h>

#include "fleet/fleet_sim.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "util/logging.hh"

namespace madmax
{

TEST(FleetSimulator, EmptyFleetIsFatal)
{
    FleetSimulator fleet;
    EXPECT_THROW(fleet.run(), ConfigError);
    EXPECT_THROW(fleet.addJob(FleetJob{"X", model_zoo::dlrmB(),
                                       TaskSpec::preTraining(),
                                       ParallelPlan::fsdpBaseline(),
                                       hw_zoo::dlrmTrainingSystem(),
                                       0.0}),
                 ConfigError);
}

TEST(FleetSimulator, BreakdownFractionsSumToOne)
{
    FleetSimulator fleet = FleetSimulator::representativeFleet();
    FleetReport report = fleet.run();
    auto check = [](const CycleBreakdown &b, const std::string &tag) {
        EXPECT_NEAR(b.compute + b.exposedComm + b.exposedMemcpy + b.idle,
                    1.0, 1e-9)
            << tag;
        EXPECT_GE(b.compute, 0.0) << tag;
        EXPECT_GE(b.exposedComm, 0.0) << tag;
    };
    check(report.overall, "overall");
    for (const auto &[family, b] : report.byFamily)
        check(b, family);
}

TEST(FleetSimulator, ReproducesFig4aCycleShares)
{
    // O3: compute + exposed communication make up >82% of observable
    // cycles; exposed communication sits in the 14-32% band.
    FleetReport report = FleetSimulator::representativeFleet().run();
    double active =
        report.overall.compute + report.overall.exposedComm;
    EXPECT_GT(active, 0.80);
    EXPECT_GT(report.overall.exposedComm, 0.10);
    EXPECT_LT(report.overall.exposedComm, 0.35);
}

TEST(FleetSimulator, ReproducesFig4bOverlapOrdering)
{
    // O4: compute-dominated LLMs overlap more communication than
    // DLRMs (>65% vs ~50%).
    FleetReport report = FleetSimulator::representativeFleet().run();
    ASSERT_TRUE(report.overlapByFamily.count("DLRM"));
    ASSERT_TRUE(report.overlapByFamily.count("LLM"));
    EXPECT_GT(report.overlapByFamily.at("LLM"),
              report.overlapByFamily.at("DLRM"));
    EXPECT_GT(report.overlapByFamily.at("LLM"), 0.60);
}

TEST(FleetSimulator, ReproducesFig4cCollectiveMix)
{
    // O4: DLRM communication is All2All-heavy; LLM communication is
    // AllReduce/AllGather-class dominated.
    FleetReport report = FleetSimulator::representativeFleet().run();
    const auto &dlrm = report.collectiveMixByFamily.at("DLRM");
    const auto &llm = report.collectiveMixByFamily.at("LLM");

    double dlrm_a2a = dlrm.count(EventCategory::All2All)
        ? dlrm.at(EventCategory::All2All)
        : 0.0;
    double llm_a2a = llm.count(EventCategory::All2All)
        ? llm.at(EventCategory::All2All)
        : 0.0;
    EXPECT_GT(dlrm_a2a, 0.25);
    // The emphasis is relative: DLRMs spend far more of their
    // communication on All2All than LLMs do (which spend ~none).
    EXPECT_GT(dlrm_a2a, 10.0 * llm_a2a + 0.01);

    double llm_ar_class = 0.0;
    for (EventCategory cat :
         {EventCategory::AllReduce, EventCategory::AllGather,
          EventCategory::ReduceScatter}) {
        if (llm.count(cat))
            llm_ar_class += llm.at(cat);
    }
    EXPECT_GT(llm_ar_class, 0.9);

    // Mixes are normalized per family.
    double total = 0.0;
    for (const auto &[cat, share] : dlrm)
        total += share;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FleetSimulator, OomJobsAreSkippedWithWarning)
{
    setQuiet(true);
    FleetSimulator fleet;
    // A job that cannot fit: DDP dense on 40 GB devices.
    ParallelPlan ddp;
    ddp.set(LayerClass::BaseDense, HierStrategy{Strategy::DDP});
    fleet.addJob(FleetJob{"DLRM", model_zoo::dlrmA(),
                          TaskSpec::preTraining(), ddp,
                          hw_zoo::dlrmTrainingSystem(), 1.0});
    // All jobs OOM: fatal.
    EXPECT_THROW(fleet.run(), ConfigError);

    // Adding one valid job rescues the fleet.
    fleet.addJob(FleetJob{"DLRM", model_zoo::dlrmA(),
                          TaskSpec::preTraining(),
                          ParallelPlan::fsdpBaseline(),
                          hw_zoo::dlrmTrainingSystem(), 1.0});
    FleetReport report = fleet.run();
    EXPECT_GT(report.overall.compute, 0.0);
    setQuiet(false);
}

TEST(FleetSimulator, WeightsBiasTheAggregate)
{
    // Two fleets with the same jobs but opposite weights should have
    // different overall breakdowns.
    auto make = [](double dlrm_w, double llm_w) {
        FleetSimulator fleet;
        fleet.addJob(FleetJob{"DLRM", model_zoo::dlrmA(),
                              TaskSpec::preTraining(),
                              ParallelPlan::fsdpBaseline(),
                              hw_zoo::dlrmTrainingSystem(), dlrm_w});
        fleet.addJob(FleetJob{"LLM", model_zoo::llama65b(),
                              TaskSpec::preTraining(),
                              ParallelPlan::fsdpBaseline(),
                              hw_zoo::llmTrainingSystem(), llm_w});
        return fleet.run();
    };
    FleetReport dlrm_heavy = make(10.0, 1.0);
    FleetReport llm_heavy = make(1.0, 10.0);
    // DLRM-heavy fleets expose more communication overall.
    EXPECT_GT(dlrm_heavy.overall.exposedComm,
              llm_heavy.overall.exposedComm);
}

} // namespace madmax
