/**
 * @file
 * EvalService tests: the /v1 API contract. Byte-identity of
 * POST /v1/evaluate with `madmax_cli evaluate --format json` (both
 * render through toJson(PerfReport)), shared-memo-cache accounting
 * across repeated requests (visible in GET /v1/stats), request
 * parsing error paths, /v1/explore's CLI-shaped output, and
 * concurrent clients over a real socket receiving identical bytes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "config/config_loader.hh"
#include "serve/http_server.hh"
#include "serve/service.hh"
#include "serve_test_util.hh"

namespace madmax
{

using namespace serve_test;

namespace
{

HttpRequest
post(const std::string &path, const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = path;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

HttpRequest
get(const std::string &path)
{
    HttpRequest req;
    req.method = "GET";
    req.target = path;
    req.version = "HTTP/1.1";
    return req;
}

/** What `madmax_cli evaluate --format json` prints for the shipped
 *  configs/ triple (the CLI renders through the same toJson). */
std::string
expectedEvaluateBody()
{
    const std::string dir = MADMAX_CONFIG_DIR;
    ModelDesc model = loadModelFile(dir + "/model_dlrm_a.json");
    ClusterSpec cluster = loadClusterFile(dir + "/system_zionex.json");
    TaskConfig task =
        loadTaskFile(dir + "/task_pretrain_optimal.json");
    PerfModel perf(cluster);
    PerfReport report = perf.evaluate(model, task.task, task.plan);
    return toJson(report).dump(2) + "\n";
}

} // namespace

TEST(EvalService, EvaluateMatchesCliJsonByteForByte)
{
    EvalService service;
    HttpResponse resp =
        service.handle(post("/v1/evaluate", shippedTripleBody()));
    ASSERT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, expectedEvaluateBody());
}

TEST(EvalService, RepeatedEvaluateIsServedFromTheSharedCache)
{
    EvalService service;
    std::string body = shippedTripleBody();

    HttpResponse first = service.handle(post("/v1/evaluate", body));
    HttpResponse second = service.handle(post("/v1/evaluate", body));
    ASSERT_EQ(first.status, 200);
    EXPECT_EQ(first.body, second.body);

    // One full evaluation, one memo hit — and /v1/stats says so.
    EngineCounters c = service.engine().counters();
    EXPECT_EQ(c.lifetime.evaluations, 1);
    EXPECT_EQ(c.lifetime.cacheHits, 1);
    EXPECT_EQ(c.cacheEntries, 1u);

    HttpResponse stats = service.handle(get("/v1/stats"));
    ASSERT_EQ(stats.status, 200);
    JsonValue doc = JsonValue::parse(stats.body);
    EXPECT_EQ(doc.at("engine").at("lifetime").at("cache_hits").asLong(),
              1);
    EXPECT_EQ(
        doc.at("engine").at("lifetime").at("evaluations").asLong(), 1);
    EXPECT_EQ(doc.at("engine").at("cache").at("entries").asLong(), 1);
    EXPECT_EQ(
        doc.at("server").at("requests").at("evaluate").asLong(), 2);
}

TEST(EvalService, MalformedJsonIs400)
{
    EvalService service;
    HttpResponse resp =
        service.handle(post("/v1/evaluate", "this is not json"));
    EXPECT_EQ(resp.status, 400);
    JsonValue doc = JsonValue::parse(resp.body);
    EXPECT_EQ(doc.at("error").at("code").asString(), "bad_request");
    EXPECT_EQ(service.stats().errors, 1);
}

TEST(EvalService, DeeplyNestedBodyIs400NotACrash)
{
    // A 400 KB '[[[[...' body fits the transport's 1 MiB cap but
    // would overflow the stack without the parser's nesting limit —
    // one request must not be able to kill the resident service.
    EvalService service;
    HttpResponse resp = service.handle(
        post("/v1/evaluate", std::string(400000, '[')));
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("nesting"), std::string::npos);
}

TEST(EvalService, NonObjectBodyIs400)
{
    EvalService service;
    HttpResponse resp = service.handle(post("/v1/evaluate", "[1, 2]"));
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("JSON object"), std::string::npos);
}

TEST(EvalService, MissingMemberIs400NamingTheMember)
{
    EvalService service;
    JsonValue body = JsonValue::parse(shippedTripleBody());
    JsonValue::Object partial;
    partial["model"] = body.at("model");
    partial["system"] = body.at("system");
    HttpResponse resp = service.handle(
        post("/v1/evaluate", JsonValue(partial).dump(2)));
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("\\\"task\\\""), std::string::npos);
}

TEST(EvalService, InvalidConfigContentsAre400)
{
    EvalService service;
    HttpResponse resp = service.handle(post(
        "/v1/evaluate",
        R"({"model": {"type": "nonsense"}, "system": {}, "task": {}})"));
    EXPECT_EQ(resp.status, 400);
    EXPECT_EQ(JsonValue::parse(resp.body)
                  .at("error")
                  .at("code")
                  .asString(),
              "bad_request");
}

TEST(EvalService, UnknownEndpointAndMethodAreCounted)
{
    EvalService service;
    EXPECT_EQ(service.handle(get("/v2/evaluate")).status, 404);
    EXPECT_EQ(service.handle(get("/v1/evaluate")).status, 405);
    EXPECT_EQ(service.stats().errors, 2);
}

TEST(EvalService, ExploreMirrorsTheCliSchema)
{
    EvalService service;
    JsonValue body = JsonValue::parse(shippedTripleBody());
    body.set("top", 3);
    HttpResponse resp =
        service.handle(post("/v1/explore", body.dump(2)));
    ASSERT_EQ(resp.status, 200);

    JsonValue doc = JsonValue::parse(resp.body);
    ASSERT_TRUE(doc.at("results").isArray());
    EXPECT_EQ(doc.at("results").size(), 3u);
    const JsonValue &search = doc.at("search");
    EXPECT_GT(search.at("evaluations").asLong(), 0);
    EXPECT_GE(search.at("pruned").asLong(), 0);

    // Rank 1 must be the best throughput and carry the full
    // per-report schema the CLI emits.
    const JsonValue &top = doc.at("results").at(size_t{0});
    EXPECT_TRUE(top.at("valid").asBool());
    EXPECT_GE(top.at("throughput_samples_per_sec").asDouble(),
              doc.at("results")
                  .at(size_t{1})
                  .at("throughput_samples_per_sec")
                  .asDouble());
}

TEST(EvalService, ExploreRejectsOutOfRangeTop)
{
    EvalService service;
    JsonValue body = JsonValue::parse(shippedTripleBody());
    body.set("top", -1);
    EXPECT_EQ(service.handle(post("/v1/explore", body.dump(2))).status,
              400);
    // Beyond-size_t doubles must be rejected, not cast (UB).
    body.set("top", 1e300);
    EXPECT_EQ(service.handle(post("/v1/explore", body.dump(2))).status,
              400);
}

namespace
{

/** A /v1/pareto body over the shipped configs: the ZionEX system
 *  swept across two node counts (a small joint space, kept quick). */
JsonValue
paretoBody()
{
    const std::string dir = MADMAX_CONFIG_DIR;
    JsonValue body;
    body.set("model", JsonValue::parseFile(dir + "/model_dlrm_a.json"));
    body.set("task",
             JsonValue::parseFile(dir + "/task_pretrain_optimal.json"));
    body.set("system",
             JsonValue::parseFile(dir + "/system_zionex.json"));
    JsonValue counts;
    counts.append(8);
    counts.append(16);
    body.set("node_counts", std::move(counts));
    return body;
}

} // namespace

TEST(EvalService, ParetoMirrorsTheCliSchema)
{
    EvalService service;
    HttpResponse resp =
        service.handle(post("/v1/pareto", paretoBody().dump(2)));
    ASSERT_EQ(resp.status, 200);

    JsonValue doc = JsonValue::parse(resp.body);
    EXPECT_EQ(doc.at("strategy").asString(), "exhaustive");
    ASSERT_TRUE(doc.at("hardware").isArray());
    EXPECT_EQ(doc.at("hardware").size(), 2u);
    ASSERT_TRUE(doc.at("frontier").isArray());
    ASSERT_GT(doc.at("frontier").size(), 0u);
    EXPECT_EQ(doc.at("baselines").size(), 2u);
    EXPECT_GT(doc.at("evaluated_points").asLong(), 0);
    EXPECT_GT(doc.at("search").at("evaluations").asLong(), 0);

    // Frontier entries carry the hardware name, the plan, the three
    // objectives, and the full report (same toJson as /v1/evaluate).
    const JsonValue &top = doc.at("frontier").at(size_t{0});
    EXPECT_FALSE(top.at("hardware").asString().empty());
    EXPECT_FALSE(top.at("plan").asString().empty());
    EXPECT_GT(top.at("objectives").at("throughput").asDouble(), 0.0);
    EXPECT_GT(
        top.at("objectives").at("mem_headroom_bytes").asDouble(), 0.0);
    EXPECT_TRUE(top.at("report").at("valid").asBool());
}

TEST(EvalService, ParetoHonorsStrategyBudgetAndSeed)
{
    EvalService service;
    JsonValue body = paretoBody();
    body.set("strategy", "genetic");
    body.set("budget", 10);
    body.set("seed", 7);
    HttpResponse resp =
        service.handle(post("/v1/pareto", body.dump(2)));
    ASSERT_EQ(resp.status, 200);
    JsonValue doc = JsonValue::parse(resp.body);
    EXPECT_EQ(doc.at("strategy").asString(), "genetic");
    EXPECT_LE(doc.at("search").at("evaluations").asLong(), 10);
}

TEST(EvalService, ParetoRejectsBadInput)
{
    EvalService service;

    JsonValue missing = paretoBody();
    // (JsonValue has no erase; rebuild without "task".)
    JsonValue noTask;
    noTask.set("model", missing.at("model"));
    noTask.set("system", missing.at("system"));
    EXPECT_EQ(
        service.handle(post("/v1/pareto", noTask.dump(2))).status, 400);

    JsonValue badStrategy = paretoBody();
    badStrategy.set("strategy", "brute-force");
    EXPECT_EQ(
        service.handle(post("/v1/pareto", badStrategy.dump(2))).status,
        400);

    JsonValue conflict = paretoBody();
    conflict.set("catalog", "cloud");
    EXPECT_EQ(
        service.handle(post("/v1/pareto", conflict.dump(2))).status,
        400);

    JsonValue badCounts = paretoBody();
    JsonValue counts;
    counts.append(0);
    badCounts.set("node_counts", std::move(counts));
    EXPECT_EQ(
        service.handle(post("/v1/pareto", badCounts.dump(2))).status,
        400);

    EXPECT_EQ(service.stats().errors, 4);
}

TEST(EvalService, ParetoRequestsAreCountedInStats)
{
    EvalService service;
    ASSERT_EQ(
        service.handle(post("/v1/pareto", paretoBody().dump(2))).status,
        200);
    JsonValue doc =
        JsonValue::parse(service.handle(get("/v1/stats")).body);
    EXPECT_EQ(
        doc.at("server").at("requests").at("pareto").asLong(), 1);
    // The pareto request plus the /v1/stats request reporting it.
    EXPECT_EQ(doc.at("server").at("requests_total").asLong(), 2);
}

TEST(EvalService, HealthReportsOkAndJobs)
{
    EvalService service;
    HttpResponse resp = service.handle(get("/v1/health"));
    ASSERT_EQ(resp.status, 200);
    JsonValue doc = JsonValue::parse(resp.body);
    EXPECT_EQ(doc.at("status").asString(), "ok");
    EXPECT_GE(doc.at("jobs").asLong(), 1);
    EXPECT_GE(doc.at("uptime_seconds").asDouble(), 0.0);
}

TEST(EvalService, ConcurrentClientsReceiveIdenticalBytes)
{
    // End to end over real sockets: many clients, one shared engine;
    // every response must be the same bytes (first computed, the rest
    // memo hits).
    EvalService service;
    HttpServerOptions opts;
    opts.port = 0;
    opts.workers = 4;
    HttpServer server(
        [&service](const HttpRequest &r) { return service.handle(r); },
        opts);
    service.setTransportStatsProvider(
        [&server] { return server.stats(); });
    server.start();

    std::string requestBody = shippedTripleBody();
    std::string expected = expectedEvaluateBody();

    // Warm the cache serially: two cold concurrent requests may both
    // miss and both evaluate (cross-call dedup only exists through
    // the cache), which would make the accounting below racy.
    ASSERT_EQ(bodyOf(httpExchange(server.port(),
                              postRequest("/v1/evaluate",
                                          requestBody))),
              expected);

    constexpr int kClients = 6;
    constexpr int kRequests = 4;
    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            for (int r = 0; r < kRequests; ++r) {
                std::string resp = httpExchange(
                    server.port(),
                    postRequest("/v1/evaluate", requestBody));
                if (statusOf(resp) == 200 && bodyOf(resp) == expected)
                    ++ok;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    server.stop();

    EXPECT_EQ(ok.load(), kClients * kRequests);
    // The triple is one cache entry: exactly one full evaluation ever
    // ran (the warmup), every concurrent request was a shared hit.
    EngineCounters counters = service.engine().counters();
    EXPECT_EQ(counters.lifetime.evaluations, 1);
    EXPECT_EQ(counters.lifetime.cacheHits,
              long{kClients * kRequests});

    // With a provider wired, /v1/stats also exposes the transport's
    // counters (rejections never reach the service, so they are only
    // visible through this object).
    JsonValue stats = JsonValue::parse(
        service.handle(get("/v1/stats")).body);
    EXPECT_GE(stats.at("transport").at("served").asLong(),
              long{kClients * kRequests} + 1);
    EXPECT_EQ(stats.at("transport").at("rejected_queue_full").asLong(),
              0);
}

namespace
{

/** A /v1/pareto serving-placement body over the shipped Llama-2
 *  serving triple (model + mixed fleet + workload). */
JsonValue
workloadParetoBody()
{
    const std::string dir = MADMAX_CONFIG_DIR;
    JsonValue body;
    body.set("model",
             JsonValue::parseFile(dir + "/model_llama2_13b.json"));
    body.set("system",
             JsonValue::parseFile(dir + "/system_mixed_inference.json"));
    body.set("workload",
             JsonValue::parseFile(dir + "/workload_serving.json"));
    return body;
}

} // namespace

TEST(EvalService, ParetoWorkloadMirrorsTheCliPlacementSearch)
{
    EvalService service;
    HttpResponse resp =
        service.handle(post("/v1/pareto", workloadParetoBody().dump(2)));
    ASSERT_EQ(resp.status, 200) << resp.body;

    // Byte-identical to what the CLI's --workload JSON mode prints
    // (modulo wall time, which is nondeterministic).
    JsonValue doc = JsonValue::parse(resp.body);
    ASSERT_TRUE(doc.at("islands").isArray());
    EXPECT_EQ(doc.at("islands").size(), 2u);
    EXPECT_EQ(doc.at("placements").size(), 4u);
    ASSERT_GT(doc.at("frontier").size(), 0u);
    const JsonValue &top = doc.at("frontier").at(size_t{0});
    EXPECT_EQ(top.at("prefill_island").asString(), "h100-pool");
    EXPECT_EQ(top.at("decode_island").asString(), "a100-80-pool");
    EXPECT_GT(top.at("objectives").at("tokens_per_sec").asDouble(), 0.0);
    EXPECT_TRUE(top.at("report").at("valid").asBool());
}

TEST(EvalService, ParetoWorkloadRejectsSweepKeys)
{
    EvalService service;

    // The placement search derives its own phases; the sweep-shaped
    // keys are contradictions, not extras to ignore.
    JsonValue conflicted = workloadParetoBody();
    conflicted.set("budget", 16);
    HttpResponse resp =
        service.handle(post("/v1/pareto", conflicted.dump(2)));
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("workload"), std::string::npos);

    JsonValue withTask = workloadParetoBody();
    withTask.set("task",
                 JsonValue::parse(R"json({"task": "inference"})json"));
    EXPECT_EQ(
        service.handle(post("/v1/pareto", withTask.dump(2))).status, 400);

    // A workload body still needs the system it places onto.
    const std::string dir = MADMAX_CONFIG_DIR;
    JsonValue noSystem;
    noSystem.set("model",
                 JsonValue::parseFile(dir + "/model_llama2_13b.json"));
    noSystem.set("workload",
                 JsonValue::parseFile(dir + "/workload_serving.json"));
    EXPECT_EQ(
        service.handle(post("/v1/pareto", noSystem.dump(2))).status, 400);
}

} // namespace madmax
