/**
 * @file
 * HttpServer transport tests: request parsing and its error paths
 * (malformed request line, oversized body/headers, bad
 * Content-Length), router dispatch (404/405), handler exception
 * mapping, Expect: 100-continue, concurrent connections, and
 * lifecycle (port 0 allocation, idempotent stop).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/http_server.hh"
#include "serve/request_router.hh"
#include "serve_test_util.hh"
#include "util/logging.hh"

namespace madmax
{

using namespace serve_test;

namespace
{

/** A server echoing "method target|body" for any request. */
HttpResponse
echoHandler(const HttpRequest &req)
{
    HttpResponse resp;
    resp.body = req.method + " " + req.target + "|" + req.body;
    return resp;
}

} // namespace

TEST(HttpServer, PicksAFreePortAndEchoes)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();
    ASSERT_GT(server.port(), 0);

    std::string resp =
        httpExchange(server.port(), postRequest("/echo", "hello"));
    EXPECT_EQ(statusOf(resp), 200);
    EXPECT_EQ(bodyOf(resp), "POST /echo|hello");
    EXPECT_NE(resp.find("Content-Length: 16\r\n"), std::string::npos);
    EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
    server.stop();
}

TEST(HttpServer, StripsQueryStringFromTarget)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string resp =
        httpExchange(server.port(), getRequest("/echo?x=1&y=2"));
    EXPECT_EQ(bodyOf(resp), "GET /echo|");
    server.stop();
}

TEST(HttpServer, MalformedRequestLineIs400)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string resp =
        httpExchange(server.port(), "complete garbage\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 400);
    EXPECT_NE(bodyOf(resp).find("\"bad_request\""), std::string::npos);
    EXPECT_EQ(server.stats().badRequests, 1);
    server.stop();
}

TEST(HttpServer, InvalidContentLengthIs400)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string resp = httpExchange(
        server.port(),
        "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 400);
    // Trailing garbage must be rejected too, not truncated into a
    // misframed body.
    resp = httpExchange(
        server.port(),
        "POST /x HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n"
        "0123456789ab");
    EXPECT_EQ(statusOf(resp), 400);
    // As must repeated Content-Length (request-smuggling framing
    // ambiguity), instead of last-wins.
    resp = httpExchange(
        server.port(),
        "POST /x HTTP/1.1\r\nContent-Length: 100\r\n"
        "Content-Length: 5\r\n\r\nhello");
    EXPECT_EQ(statusOf(resp), 400);
    EXPECT_NE(bodyOf(resp).find("repeated Content-Length"),
              std::string::npos);
    server.stop();
}

TEST(HttpServer, ServesBareLfClientsPromptly)
{
    // LF-only framing must be detected while reading, not only after
    // an idle/request deadline expires.
    HttpServerOptions opts;
    opts.port = 0;
    opts.idleTimeoutSeconds = 30; // Make a timeout-dependent pass hang.
    opts.requestDeadlineSeconds = 30;
    HttpServer server(echoHandler, opts);
    server.start();
    auto t0 = std::chrono::steady_clock::now();
    std::string resp = httpExchange(
        server.port(),
        "POST /lf HTTP/1.1\nConnection: close\nContent-Length: 2\n\nok");
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    EXPECT_EQ(statusOf(resp), 200);
    EXPECT_EQ(bodyOf(resp), "POST /lf|ok");
    EXPECT_LT(seconds, 5.0);
    server.stop();
}

TEST(HttpServer, OversizedBodyIs413)
{
    HttpServerOptions opts;
    opts.port = 0;
    opts.maxBodyBytes = 64;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string resp = httpExchange(
        server.port(), postRequest("/x", std::string(1000, 'a')));
    EXPECT_EQ(statusOf(resp), 413);
    EXPECT_NE(bodyOf(resp).find("payload_too_large"),
              std::string::npos);
    server.stop();
}

TEST(HttpServer, OversizedHeadersAre431)
{
    HttpServerOptions opts;
    opts.port = 0;
    opts.maxHeaderBytes = 128;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string resp = httpExchange(
        server.port(),
        "GET / HTTP/1.1\r\nX-Big: " + std::string(4096, 'h') +
            "\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 431);
    server.stop();
}

TEST(HttpServer, ChunkedTransferEncodingIs501)
{
    // Only Content-Length framing is implemented; chunked bodies
    // must be refused explicitly, not parsed as empty.
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string resp = httpExchange(
        server.port(),
        "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        "2\r\nok\r\n0\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 501);
    EXPECT_NE(bodyOf(resp).find("not_implemented"),
              std::string::npos);
    server.stop();
}

TEST(HttpServer, MissingContentLengthMeansEmptyBody)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string resp = httpExchange(
        server.port(),
        "POST /x HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n"
        "ignored");
    EXPECT_EQ(statusOf(resp), 200);
    EXPECT_EQ(bodyOf(resp), "POST /x|");
    server.stop();
}

TEST(HttpServer, HonorsExpect100Continue)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();
    std::string body = "curl-style";
    std::string resp = httpExchange(
        server.port(),
        "POST /x HTTP/1.1\r\nExpect: 100-continue\r\n"
        "Connection: close\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
            body);
    EXPECT_EQ(resp.rfind("HTTP/1.1 100 Continue\r\n\r\n", 0), 0u);
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(resp.find("POST /x|curl-style"), std::string::npos);
    server.stop();
}

TEST(HttpServer, HandlerExceptionsMapTo400And500)
{
    RequestRouter router;
    router.add("GET", "/bad-config", [](const HttpRequest &) {
        fatal("you asked for it");
        return HttpResponse{};
    });
    router.add("GET", "/bug", [](const HttpRequest &) -> HttpResponse {
        throw std::runtime_error("not your fault");
    });
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [&router](const HttpRequest &r) { return router.route(r); },
        opts);
    server.start();

    std::string resp =
        httpExchange(server.port(), getRequest("/bad-config"));
    EXPECT_EQ(statusOf(resp), 400);
    EXPECT_NE(bodyOf(resp).find("you asked for it"),
              std::string::npos);

    resp = httpExchange(server.port(), getRequest("/bug"));
    EXPECT_EQ(statusOf(resp), 500);
    EXPECT_NE(bodyOf(resp).find("\"internal\""), std::string::npos);
    server.stop();
}

TEST(HttpServer, RouterProduces404And405)
{
    RequestRouter router;
    router.add("POST", "/only-post",
               [](const HttpRequest &) { return HttpResponse{}; });
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [&router](const HttpRequest &r) { return router.route(r); },
        opts);
    server.start();

    EXPECT_EQ(statusOf(httpExchange(server.port(), getRequest("/nope"))),
              404);
    std::string resp =
        httpExchange(server.port(), getRequest("/only-post"));
    EXPECT_EQ(statusOf(resp), 405);
    EXPECT_NE(bodyOf(resp).find("use POST"), std::string::npos);
    server.stop();
}

TEST(HttpServer, ServesConcurrentClients)
{
    HttpServerOptions opts;
    opts.port = 0;
    opts.workers = 4;
    HttpServer server(echoHandler, opts);
    server.start();

    constexpr int kClients = 8;
    constexpr int kRequests = 10;
    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int r = 0; r < kRequests; ++r) {
                std::string body =
                    "c" + std::to_string(c) + "r" + std::to_string(r);
                std::string resp = httpExchange(
                    server.port(), postRequest("/echo", body));
                if (statusOf(resp) == 200 &&
                    bodyOf(resp) == "POST /echo|" + body)
                    ++ok;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), kClients * kRequests);
    EXPECT_GE(server.stats().served, long{kClients * kRequests});
    server.stop();
}

TEST(HttpServer, StopIsIdempotentAndRestartable)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.stop(); // Before start: no-op.
    server.start();
    int first = server.port();
    EXPECT_EQ(statusOf(httpExchange(first, getRequest("/x"))), 200);
    server.stop();
    server.stop(); // Twice: no-op.
    server.start();
    EXPECT_EQ(statusOf(httpExchange(server.port(), getRequest("/x"))),
              200);
    server.stop();
}

TEST(HttpServer, RejectsBadOptions)
{
    EXPECT_THROW(HttpServer(nullptr), ConfigError);
    HttpServerOptions opts;
    opts.port = 99999;
    EXPECT_THROW(HttpServer(echoHandler, opts), ConfigError);
    opts.port = 0;
    opts.workers = 0;
    EXPECT_THROW(HttpServer(echoHandler, opts), ConfigError);
}

} // namespace madmax
