/**
 * @file
 * Shared helpers for the serving-layer tests: a minimal blocking HTTP
 * client over raw POSIX sockets (the tests must not depend on the
 * very server code they are checking) and loaders for the shipped
 * configs/ triple.
 */

#ifndef MADMAX_TESTS_SERVE_SERVE_TEST_UTIL_HH
#define MADMAX_TESTS_SERVE_SERVE_TEST_UTIL_HH

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "config/json.hh"

namespace madmax::serve_test
{

/** Connect to 127.0.0.1:@p port, send @p raw, read to EOF. */
inline std::string
httpExchange(int port, const std::string &raw)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    size_t off = 0;
    while (off < raw.size()) {
        ssize_t n = ::send(fd, raw.data() + off, raw.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    std::string resp;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        resp.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    return resp;
}

/** Render a POST with a body (CRLF framing, explicit Content-Length).
 *  Asks for `Connection: close` so httpExchange's read-to-EOF
 *  terminates; keep-alive flows use KeepAliveClient instead. */
inline std::string
postRequest(const std::string &path, const std::string &body)
{
    return "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n"
        "Connection: close\r\n"
        "Content-Type: application/json\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
}

inline std::string
getRequest(const std::string &path)
{
    return "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
        "Connection: close\r\n\r\n";
}

/** Keep-alive variants: no `Connection: close`, so the server holds
 *  the connection open for the next request. */
inline std::string
postRequestKeepAlive(const std::string &path, const std::string &body)
{
    return "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n"
        "Content-Type: application/json\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
}

inline std::string
getRequestKeepAlive(const std::string &path)
{
    return "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
}

/**
 * A blocking keep-alive client: one TCP connection, any number of
 * requests. readResponse() frames responses by Content-Length (the
 * server always sends one), so pipelined responses on the same
 * socket are split correctly instead of read-to-EOF.
 */
class KeepAliveClient
{
  public:
    explicit KeepAliveClient(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~KeepAliveClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    KeepAliveClient(const KeepAliveClient &) = delete;
    KeepAliveClient &operator=(const KeepAliveClient &) = delete;

    bool connected() const { return fd_ >= 0; }

    /** Send raw bytes; returns false on a send error (peer gone). */
    bool sendRaw(const std::string &raw)
    {
        size_t off = 0;
        while (off < raw.size()) {
            ssize_t n = ::send(fd_, raw.data() + off,
                               raw.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read exactly one response (status line through body), framed
     *  by its Content-Length header. Empty string on EOF/error. */
    std::string readResponse()
    {
        while (true) {
            size_t headerEnd = buf_.find("\r\n\r\n");
            if (headerEnd != std::string::npos) {
                std::string head = buf_.substr(0, headerEnd);
                for (char &c : head)
                    c = static_cast<char>(
                        std::tolower(static_cast<unsigned char>(c)));
                size_t contentLength = 0;
                size_t pos = head.find("content-length:");
                if (pos != std::string::npos)
                    contentLength = std::stoul(
                        head.substr(pos + 15));
                size_t total = headerEnd + 4 + contentLength;
                if (buf_.size() >= total) {
                    std::string resp = buf_.substr(0, total);
                    buf_.erase(0, total);
                    return resp;
                }
            }
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return "";
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

    /** Drain the socket to EOF (after the server closes). */
    std::string readToEof()
    {
        char chunk[4096];
        ssize_t n;
        while ((n = ::recv(fd_, chunk, sizeof(chunk), 0)) > 0)
            buf_.append(chunk, static_cast<size_t>(n));
        std::string all;
        all.swap(buf_);
        return all;
    }

  private:
    int fd_ = -1;
    std::string buf_; ///< Received, not yet returned.
};

/** Status code of a raw HTTP response (0 if unparsable). */
inline int
statusOf(const std::string &response)
{
    if (response.rfind("HTTP/1.1 ", 0) != 0 || response.size() < 12)
        return 0;
    return std::stoi(response.substr(9, 3));
}

/** Body of a raw HTTP response (everything after the blank line). */
inline std::string
bodyOf(const std::string &response)
{
    size_t pos = response.find("\r\n\r\n");
    return pos == std::string::npos ? "" : response.substr(pos + 4);
}

inline std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** The shipped configs/ triple as a /v1/evaluate request body. */
inline std::string
shippedTripleBody()
{
    const std::string dir = MADMAX_CONFIG_DIR;
    JsonValue body;
    body.set("model",
             JsonValue::parseFile(dir + "/model_dlrm_a.json"));
    body.set("system",
             JsonValue::parseFile(dir + "/system_zionex.json"));
    body.set("task",
             JsonValue::parseFile(dir + "/task_pretrain_optimal.json"));
    return body.dump(2);
}

} // namespace madmax::serve_test

#endif // MADMAX_TESTS_SERVE_SERVE_TEST_UTIL_HH
