/**
 * @file
 * Seeded chaos storms against the serving stack. Every storm is
 * deterministic — seeded prob triggers, serial engines, sequential
 * clients — so the suite asserts exact outcome sequences, not "it
 * probably survived": the same script against the same request
 * sequence must produce the same statuses, the same counters, and
 * byte-identical healthy responses. The graceful-degradation
 * invariant under test: faults map to taxonomy errors and counters,
 * never to hangs, crashes, or corrupted healthy responses (see
 * docs/resilience.md).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "config/json.hh"
#include "engine/eval_engine.hh"
#include "hw/hw_zoo.hh"
#include "model/model_zoo.hh"
#include "serve/http_server.hh"
#include "serve/service.hh"
#include "serve_test_util.hh"
#include "util/fault_injection.hh"

namespace madmax
{

using namespace serve_test;

namespace
{

HttpRequest
evaluateRequest(const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/evaluate";
    req.body = body;
    return req;
}

/** Serial, breaker-disabled service: every outcome is the fault
 *  script's doing, in submission order. */
ServiceOptions
stormOptions()
{
    ServiceOptions o;
    o.jobs = 1;
    o.batchWindowMicros = 0;
    o.breakerFailureThreshold = 1 << 20;
    return o;
}

/** Run @p n same-body requests through a fresh service under
 *  @p script; returns the status sequence. */
std::vector<int>
serviceStorm(const std::string &script, int n, long *evalFailures)
{
    EvalService service(stormOptions());
    FaultScope scope(script);
    std::vector<int> statuses;
    for (int i = 0; i < n; ++i)
        statuses.push_back(
            service.handle(evaluateRequest(shippedTripleBody()))
                .status);
    if (evalFailures != nullptr)
        *evalFailures = service.stats().evalFailures;
    return statuses;
}

std::string
errorCodeOf(const HttpResponse &resp)
{
    return JsonValue::parse(resp.body)
        .at("error")
        .at("code")
        .asString();
}

} // namespace

TEST(Chaos, EngineFaultStormIsSeedDeterministic)
{
    // Three rounds over four distinct plans with memoization off: the
    // engine.eval point is hit 12 times per run, and a seeded prob
    // trigger must fail the exact same slots every run.
    PerfModel model(hw_zoo::dlrmTrainingSystem());
    ModelDesc dlrm = model_zoo::dlrmA();
    TaskSpec task = TaskSpec::preTraining();

    // Four memory-feasible plans (DDP/DDP is deliberately absent: it
    // would be verdict-pruned and never reach the fault point).
    std::vector<ParallelPlan> plans;
    for (HierStrategy hs :
         {HierStrategy{Strategy::TP, Strategy::DDP},
          HierStrategy{Strategy::TP, Strategy::TP},
          HierStrategy{Strategy::DDP, Strategy::TP},
          HierStrategy{Strategy::FSDP, Strategy::FSDP}}) {
        ParallelPlan p;
        p.set(LayerClass::BaseDense, hs);
        plans.push_back(p);
    }
    std::vector<PlanRequest> requests;
    for (const ParallelPlan &p : plans)
        requests.push_back(PlanRequest{&model, &dlrm, &task, p});

    auto runStorm = [&](const char *script) {
        EvalEngineOptions eo;
        eo.jobs = 1;
        eo.memoize = false;
        EvalEngine engine(eo);
        FaultScope scope(script);
        std::vector<bool> failed;
        for (int round = 0; round < 3; ++round)
            for (const PerfReport &r : engine.evaluateAll(requests))
                failed.push_back(r.failed());
        return failed;
    };

    std::vector<bool> first =
        runStorm("engine.eval=throw@prob:0.4,seed:7");
    std::vector<bool> second =
        runStorm("engine.eval=throw@prob:0.4,seed:7");
    ASSERT_EQ(first.size(), 12u);
    EXPECT_EQ(first, second);
    // seed:7 at p=0.4 lands both outcomes inside 12 draws.
    EXPECT_NE(first, std::vector<bool>(12, false));
    EXPECT_NE(first, std::vector<bool>(12, true));
    EXPECT_NE(runStorm("engine.eval=throw@prob:0.4,seed:8"), first);

    // Healthy slots under the storm are byte-identical to a clean,
    // engine-free evaluation — a fault never corrupts a neighbour.
    {
        EvalEngineOptions eo;
        eo.jobs = 1;
        EvalEngine engine(eo);
        FaultScope scope("engine.eval=throw@prob:0.4,seed:7");
        std::vector<PerfReport> stormed = engine.evaluateAll(requests);
        for (size_t i = 0; i < stormed.size(); ++i) {
            if (stormed[i].failed())
                continue;
            PerfReport clean = model.evaluate(dlrm, task, plans[i]);
            EXPECT_EQ(stormed[i].iterationTime, clean.iterationTime)
                << "slot " << i;
            EXPECT_EQ(stormed[i].plan.toString(),
                      clean.plan.toString());
        }
    }
}

TEST(Chaos, ServiceStormStatusSequenceIsReproducible)
{
    // End to end through EvalService: same script, same 12-request
    // sequence, two fresh services -> identical status sequences and
    // identical failure accounting. (Failed reports are never
    // memoized, so the storm keeps reaching the engine until the
    // first success; after that the memo cache answers.)
    const std::string script = "engine.eval=throw@prob:0.5,seed:21";
    long failuresA = 0, failuresB = 0;
    std::vector<int> a = serviceStorm(script, 12, &failuresA);
    std::vector<int> b = serviceStorm(script, 12, &failuresB);
    EXPECT_EQ(a, b);
    EXPECT_EQ(failuresA, failuresB);

    long fiveHundreds = 0;
    for (int status : a) {
        EXPECT_TRUE(status == 200 || status == 500) << status;
        if (status == 500)
            ++fiveHundreds;
    }
    EXPECT_EQ(failuresA, fiveHundreds);
    EXPECT_GE(fiveHundreds, 1);
    EXPECT_EQ(a.back(), 200); // The storm never wedges the service.
}

TEST(Chaos, BreakerTripsUnderStormAndRecoversAfterCooldown)
{
    ServiceOptions opts = stormOptions();
    opts.breakerFailureThreshold = 3;
    opts.breakerOpenMillis = 300;
    EvalService service(opts);

    {
        FaultScope scope("engine.eval=throw");
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(service
                          .handle(evaluateRequest(shippedTripleBody()))
                          .status,
                      500)
                << "failure " << i;
        HttpResponse rejected =
            service.handle(evaluateRequest(shippedTripleBody()));
        EXPECT_EQ(rejected.status, 503);
        EXPECT_EQ(errorCodeOf(rejected), "circuit_open");
        EXPECT_EQ(rejected.headers.at("Retry-After"), "1");
    }

    // Storm over; past the cool-down the half-open probe heals the
    // key and traffic flows again.
    std::this_thread::sleep_for(std::chrono::milliseconds(350));
    HttpResponse healed =
        service.handle(evaluateRequest(shippedTripleBody()));
    EXPECT_EQ(healed.status, 200);

    CircuitBreakerStats br = service.breaker().stats();
    EXPECT_EQ(br.trips, 1);
    EXPECT_EQ(br.rejects, 1);
    EXPECT_EQ(br.probes, 1);
    EXPECT_EQ(br.recoveries, 1);
    EXPECT_EQ(br.openNow, 0);
    EXPECT_EQ(service.stats().evalFailures, 3);
}

TEST(Chaos, ConfigFaultStormDegradesThenRecovers)
{
    EvalService service(stormOptions());
    FaultScope scope("config.load=badalloc@first:2");

    for (int i = 0; i < 2; ++i) {
        HttpResponse resp =
            service.handle(evaluateRequest(shippedTripleBody()));
        EXPECT_EQ(resp.status, 503) << "attempt " << i;
        EXPECT_EQ(errorCodeOf(resp), "resource_exhausted");
    }
    HttpResponse ok =
        service.handle(evaluateRequest(shippedTripleBody()));
    EXPECT_EQ(ok.status, 200);
    EXPECT_NE(ok.body.find("\"iteration_seconds\""),
              std::string::npos);
}

TEST(Chaos, AcceptFaultStormRejectsPromptlyAndRecovers)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [](const HttpRequest &) { return HttpResponse{}; }, opts);
    server.start();

    // first:3 on accept(2): the first two clients are rejected with a
    // prompt 503 through the emergency fd (the reserve burns one
    // extra hit per pass when it finds the backlog already empty),
    // after which the storm is spent and service resumes. No client
    // ever hangs to its own timeout.
    FaultScope scope("http.accept=errno:EMFILE@first:3");
    std::vector<int> statuses;
    for (int i = 0; i < 3; ++i)
        statuses.push_back(
            statusOf(httpExchange(server.port(),
                                  getRequest("/v1/health"))));
    EXPECT_EQ(statuses, (std::vector<int>{503, 503, 200}));

    HttpServerStats s = server.stats();
    EXPECT_EQ(s.fdExhausted, 3); // Injected EMFILEs (incl. dry pass).
    EXPECT_EQ(s.fdRejects, 2);   // Clients actually turned away.
    EXPECT_EQ(s.accepted, 1);
    server.stop();
}

TEST(Chaos, ReadFaultDropsOneConnectionNotTheServer)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [](const HttpRequest &) {
            HttpResponse r;
            r.body = "pong";
            return r;
        },
        opts);
    server.start();

    {
        // The very first recv(2) dies with a connection reset: client
        // one is dropped without a response, client two is untouched.
        FaultScope scope("http.read=errno:ECONNRESET@nth:1");
        std::string dropped =
            httpExchange(server.port(), getRequest("/v1/health"));
        EXPECT_NE(statusOf(dropped), 200);
        std::string fine =
            httpExchange(server.port(), getRequest("/v1/health"));
        EXPECT_EQ(statusOf(fine), 200);
        EXPECT_EQ(bodyOf(fine), "pong");
    }

    // A sustained seeded read storm: reconnecting clients make
    // progress and the server never wedges.
    int successes = 0;
    {
        FaultScope scope("http.read=errno:ECONNRESET@prob:0.3,seed:5");
        for (int i = 0; i < 20; ++i) {
            std::string resp =
                httpExchange(server.port(), getRequest("/v1/health"));
            if (statusOf(resp) == 200) {
                EXPECT_EQ(bodyOf(resp), "pong");
                ++successes;
            }
        }
    }
    EXPECT_GE(successes, 1);
    EXPECT_TRUE(server.running());
    EXPECT_EQ(statusOf(httpExchange(server.port(),
                                    getRequest("/v1/health"))),
              200);
    server.stop();
}

TEST(Chaos, ShortWriteFaultsNeverCorruptAResponse)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [](const HttpRequest &) {
            HttpResponse r;
            r.body = "intact-response-body";
            return r;
        },
        opts);
    server.start();

    // Every send(2) truncated to one byte for the first 40 calls: the
    // flush loop must resume from the partial offset until the
    // response is complete — slow, never wrong.
    FaultScope scope("http.write=short@first:40");
    std::string resp =
        httpExchange(server.port(), getRequest("/v1/health"));
    EXPECT_EQ(statusOf(resp), 200);
    EXPECT_EQ(bodyOf(resp), "intact-response-body");
    server.stop();
}

TEST(Chaos, StormCountersSurfaceInStatsAndMetrics)
{
    // The observability contract the CI fault smoke rests on: an
    // armed script surfaces per-point hit/injected counters in both
    // /v1/stats and /v1/metrics.
    EvalService service(stormOptions());
    FaultScope scope("engine.eval=throw@nth:1");
    EXPECT_EQ(
        service.handle(evaluateRequest(shippedTripleBody())).status,
        500);

    HttpRequest statsReq;
    statsReq.method = "GET";
    statsReq.target = "/v1/stats";
    JsonValue doc =
        JsonValue::parse(service.handle(statsReq).body);
    const JsonValue &faults = doc.at("server").at("faults");
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults.at(0).at("point").asString(), "engine.eval");
    EXPECT_EQ(faults.at(0).at("hits").asDouble(), 1);
    EXPECT_EQ(faults.at(0).at("injected").asDouble(), 1);

    HttpRequest metricsReq;
    metricsReq.method = "GET";
    metricsReq.target = "/v1/metrics";
    const std::string body = service.handle(metricsReq).body;
    for (const char *needle :
         {"madmax_fault_hits_total{point=\"engine.eval\"} 1",
          "madmax_fault_injected_total{point=\"engine.eval\"} 1",
          "madmax_eval_failures_total 1"})
        EXPECT_NE(body.find(needle), std::string::npos)
            << "missing: " << needle;
}

} // namespace madmax
