/**
 * @file
 * Keep-alive transport tests: connection reuse, pipelining on one
 * socket, partial-write resumption of large responses, idle-timeout
 * eviction, the per-connection request cap, the
 * error-closes-the-connection contract, and tiered load shedding.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/http_server.hh"
#include "serve_test_util.hh"

namespace madmax
{

using namespace serve_test;

namespace
{

HttpResponse
echoHandler(const HttpRequest &req)
{
    HttpResponse resp;
    resp.body = req.method + " " + req.target + "|" + req.body;
    return resp;
}

} // namespace

TEST(KeepAlive, ServesManyRequestsOnOneConnection)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();

    KeepAliveClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < 20; ++i) {
        std::string body = "req" + std::to_string(i);
        ASSERT_TRUE(
            client.sendRaw(postRequestKeepAlive("/echo", body)));
        std::string resp = client.readResponse();
        EXPECT_EQ(statusOf(resp), 200);
        EXPECT_EQ(bodyOf(resp), "POST /echo|" + body);
        EXPECT_NE(resp.find("Connection: keep-alive\r\n"),
                  std::string::npos);
    }
    HttpServerStats stats = server.stats();
    EXPECT_EQ(stats.accepted, 1);
    EXPECT_EQ(stats.served, 20);
    EXPECT_EQ(stats.keepAliveReuses, 19);
    server.stop();
}

TEST(KeepAlive, PipelinedRequestsAreAnsweredInOrder)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();

    KeepAliveClient client(server.port());
    ASSERT_TRUE(client.connected());
    // All five requests in one burst, before reading anything.
    std::string burst;
    for (int i = 0; i < 5; ++i)
        burst += postRequestKeepAlive("/p", "n" + std::to_string(i));
    ASSERT_TRUE(client.sendRaw(burst));
    for (int i = 0; i < 5; ++i) {
        std::string resp = client.readResponse();
        EXPECT_EQ(statusOf(resp), 200);
        EXPECT_EQ(bodyOf(resp), "POST /p|n" + std::to_string(i));
    }
    HttpServerStats stats = server.stats();
    EXPECT_EQ(stats.served, 5);
    EXPECT_GE(stats.pipelinedRequests, 1);
    server.stop();
}

TEST(KeepAlive, LargeResponsesSurvivePartialWrites)
{
    // A response far larger than the socket send buffer forces the
    // EAGAIN -> EPOLLOUT -> resume path; the client must still
    // receive every byte, and the connection must stay usable. 32 MB
    // exceeds any autotuned loopback send+receive buffering, so the
    // write stalls even if the client races ahead.
    const std::string big(32 << 20, 'x');
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [&big](const HttpRequest &) {
            HttpResponse resp;
            resp.body = big;
            return resp;
        },
        opts);
    server.start();

    KeepAliveClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.sendRaw(getRequestKeepAlive("/big")));
    // Don't read yet: let the kernel buffers fill so the server's
    // write is guaranteed to go partial before we start draining.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::string resp = client.readResponse();
    EXPECT_EQ(statusOf(resp), 200);
    EXPECT_EQ(bodyOf(resp), big);
    ASSERT_TRUE(client.sendRaw(getRequestKeepAlive("/big")));
    EXPECT_EQ(bodyOf(client.readResponse()), big);
    EXPECT_GE(server.stats().partialWrites, 1);
    server.stop();
}

TEST(KeepAlive, IdleConnectionsAreEvicted)
{
    HttpServerOptions opts;
    opts.port = 0;
    opts.idleTimeoutSeconds = 1;
    HttpServer server(echoHandler, opts);
    server.start();

    KeepAliveClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.sendRaw(postRequestKeepAlive("/x", "hi")));
    EXPECT_EQ(statusOf(client.readResponse()), 200);

    // Idle past the timeout: the server must close from its side.
    auto t0 = std::chrono::steady_clock::now();
    std::string rest = client.readToEof(); // Blocks until server FIN.
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    EXPECT_EQ(rest, "");
    EXPECT_LT(seconds, 10.0);
    EXPECT_GE(server.stats().idleClosed, 1);
    server.stop();
}

TEST(KeepAlive, RequestCapClosesTheConnection)
{
    HttpServerOptions opts;
    opts.port = 0;
    opts.keepAliveMaxRequests = 3;
    HttpServer server(echoHandler, opts);
    server.start();

    KeepAliveClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(client.sendRaw(postRequestKeepAlive("/x", "b")));
        std::string resp = client.readResponse();
        EXPECT_EQ(statusOf(resp), 200);
        bool last = i == 2;
        EXPECT_NE(resp.find(last ? "Connection: close\r\n"
                                 : "Connection: keep-alive\r\n"),
                  std::string::npos);
    }
    // The cap response carried Connection: close; the socket must
    // reach EOF without further requests being accepted.
    EXPECT_EQ(client.readToEof(), "");
    server.stop();
}

TEST(KeepAlive, ErrorResponsesCloseTheConnection)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(echoHandler, opts);
    server.start();

    // Transport-level error mid-stream: a malformed second request
    // after a healthy first one. The error response must arrive
    // intact (drained close, no RST racing it) and carry
    // Connection: close.
    KeepAliveClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.sendRaw(postRequestKeepAlive("/ok", "fine")));
    EXPECT_EQ(statusOf(client.readResponse()), 200);
    ASSERT_TRUE(client.sendRaw("complete garbage\r\n\r\n"));
    std::string resp = client.readResponse();
    EXPECT_EQ(statusOf(resp), 400);
    EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(client.readToEof(), "");
    server.stop();
}

TEST(KeepAlive, ShedsExpensiveBeforeCachedUnderLoad)
{
    // With queueDepth 4 and handlers parked on a gate, in-flight load
    // saturates; tier-2 requests must then shed with a Retry-After
    // 503 while tier-0 requests keep flowing (workers > queueDepth,
    // so shedding — not worker starvation — is what's observed).
    std::mutex gate;
    gate.lock();
    HttpServerOptions opts;
    opts.port = 0;
    opts.workers = 8;
    opts.queueDepth = 4;
    opts.classifier = [](const HttpRequest &req) {
        return req.method == "GET" ? RequestCost::Cheap
                                   : RequestCost::Expensive;
    };
    HttpServer server(
        [&gate](const HttpRequest &req) {
            if (req.method == "POST")
                std::lock_guard<std::mutex> hold(gate);
            HttpResponse resp;
            resp.body = "done";
            return resp;
        },
        opts);
    server.start();

    // Saturate: 3 gated POSTs reach the Expensive-tier shed point
    // (3/4 of queueDepth); a 4th would itself be shed.
    std::vector<std::unique_ptr<KeepAliveClient>> blocked;
    for (int i = 0; i < 3; ++i) {
        blocked.push_back(
            std::make_unique<KeepAliveClient>(server.port()));
        ASSERT_TRUE(blocked.back()->connected());
        ASSERT_TRUE(blocked.back()->sendRaw(
            postRequestKeepAlive("/slow", "x")));
    }
    for (int i = 0; i < 300 && server.stats().accepted < 3; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // A tier-2 request is shed with 503 + Retry-After...
    std::string resp =
        httpExchange(server.port(), postRequest("/slow", "y"));
    EXPECT_EQ(statusOf(resp), 503);
    EXPECT_NE(resp.find("Retry-After: 1\r\n"), std::string::npos);
    // ...while a tier-0 health probe still gets through.
    resp = httpExchange(server.port(), getRequest("/health"));
    EXPECT_EQ(statusOf(resp), 200);
    EXPECT_EQ(bodyOf(resp), "done");

    HttpServerStats stats = server.stats();
    EXPECT_GE(stats.shedExpensive, 1);
    EXPECT_EQ(stats.shedCached, 0);

    gate.unlock(); // Release the parked handlers.
    for (auto &c : blocked)
        EXPECT_EQ(statusOf(c->readResponse()), 200);
    server.stop();
}

} // namespace madmax
