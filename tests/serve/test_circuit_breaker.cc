/**
 * @file
 * CircuitBreaker state-machine tests: trip after the failure
 * threshold, fast-fail while open, half-open single-probe admission
 * after the cool-down, recovery and re-open, per-key independence,
 * the lost-probe timeout, and counter accounting under concurrency
 * (this suite also runs under TSan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/circuit_breaker.hh"

namespace madmax
{

namespace
{

CircuitBreakerOptions
fastOptions(int threshold = 3, long openMillis = 30)
{
    CircuitBreakerOptions o;
    o.failureThreshold = threshold;
    o.openMillis = openMillis;
    return o;
}

void
failTimes(CircuitBreaker &cb, uint64_t key, int n)
{
    long retry = 0;
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(cb.admit(key, &retry));
        cb.recordFailure(key);
    }
}

} // namespace

TEST(CircuitBreaker, ClosedAdmitsEverything)
{
    CircuitBreaker cb(fastOptions());
    long retry = 0;
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(cb.admit(7, &retry));
        cb.recordSuccess(7);
    }
    EXPECT_EQ(cb.stats().trips, 0);
    EXPECT_EQ(cb.stats().openNow, 0);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures)
{
    CircuitBreaker cb(fastOptions(3));
    failTimes(cb, 7, 3);

    long retry = 0;
    EXPECT_FALSE(cb.admit(7, &retry));
    EXPECT_GE(retry, 1);
    CircuitBreakerStats s = cb.stats();
    EXPECT_EQ(s.trips, 1);
    EXPECT_EQ(s.rejects, 1);
    EXPECT_EQ(s.openNow, 1);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak)
{
    CircuitBreaker cb(fastOptions(3));
    long retry = 0;
    failTimes(cb, 7, 2);
    ASSERT_TRUE(cb.admit(7, &retry));
    cb.recordSuccess(7); // streak back to 0
    failTimes(cb, 7, 2);
    EXPECT_TRUE(cb.admit(7, &retry)); // 2 + 2 never reaches 3
    EXPECT_EQ(cb.stats().trips, 0);
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe)
{
    CircuitBreaker cb(fastOptions(2, 20));
    failTimes(cb, 7, 2);
    long retry = 0;
    ASSERT_FALSE(cb.admit(7, &retry));

    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_TRUE(cb.admit(7, &retry));  // the half-open probe
    EXPECT_FALSE(cb.admit(7, &retry)); // concurrent request: rejected
    EXPECT_EQ(cb.stats().probes, 1);
}

TEST(CircuitBreaker, ProbeSuccessClosesAndFailureReopens)
{
    CircuitBreaker cb(fastOptions(2, 20));
    long retry = 0;

    failTimes(cb, 7, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_TRUE(cb.admit(7, &retry));
    cb.recordFailure(7); // probe failed: straight back to open
    EXPECT_FALSE(cb.admit(7, &retry));
    EXPECT_EQ(cb.stats().trips, 2);

    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_TRUE(cb.admit(7, &retry));
    cb.recordSuccess(7); // probe succeeded: closed again
    EXPECT_TRUE(cb.admit(7, &retry));
    cb.recordSuccess(7);
    CircuitBreakerStats s = cb.stats();
    EXPECT_EQ(s.recoveries, 1);
    EXPECT_EQ(s.openNow, 0);
}

TEST(CircuitBreaker, LostProbeForfeitsItsSlotAfterOneCooldown)
{
    CircuitBreaker cb(fastOptions(2, 20));
    long retry = 0;
    failTimes(cb, 7, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_TRUE(cb.admit(7, &retry));
    // The probe never records an outcome (e.g. its request hit the
    // deadline). The key must not wedge rejected forever: after
    // another cool-down the next request becomes the new probe.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_TRUE(cb.admit(7, &retry));
    cb.recordSuccess(7);
    EXPECT_EQ(cb.stats().openNow, 0);
}

TEST(CircuitBreaker, KeysAreIndependent)
{
    CircuitBreaker cb(fastOptions(2));
    long retry = 0;
    failTimes(cb, 7, 2);
    EXPECT_FALSE(cb.admit(7, &retry));
    EXPECT_TRUE(cb.admit(8, &retry)); // untouched key stays closed
    cb.recordSuccess(8);
    EXPECT_EQ(cb.stats().openNow, 1);
}

TEST(CircuitBreaker, LateSuccessOnOpenKeyDrainsOpenNow)
{
    // A request admitted before the trip can report success after it;
    // the accounting must not leak the openNow gauge.
    CircuitBreaker cb(fastOptions(2));
    long retry = 0;
    ASSERT_TRUE(cb.admit(7, &retry)); // in flight through the trip
    failTimes(cb, 7, 2);
    ASSERT_EQ(cb.stats().openNow, 1);
    cb.recordSuccess(7);
    EXPECT_EQ(cb.stats().openNow, 0);
}

TEST(CircuitBreaker, ConcurrentHammeringKeepsCountersConsistent)
{
    CircuitBreaker cb(fastOptions(5, 10));
    std::atomic<long> admitted{0}, rejected{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&cb, &admitted, &rejected, t] {
            for (int i = 0; i < 500; ++i) {
                uint64_t key = static_cast<uint64_t>(i % 3);
                long retry = 0;
                if (cb.admit(key, &retry)) {
                    ++admitted;
                    // Poison one key, heal the others.
                    if (key == 0 && t % 2 == 0)
                        cb.recordFailure(key);
                    else
                        cb.recordSuccess(key);
                } else {
                    ++rejected;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    CircuitBreakerStats s = cb.stats();
    EXPECT_EQ(admitted.load() + rejected.load(), 4 * 500);
    EXPECT_EQ(s.rejects, rejected.load());
    EXPECT_GE(s.trips, 0);
    EXPECT_GE(s.openNow, 0);
    EXPECT_LE(s.openNow, 3);
}

} // namespace madmax
