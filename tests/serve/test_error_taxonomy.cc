/**
 * @file
 * Error-taxonomy wire-contract tests: every error body the serving
 * stack can emit, pinned byte for byte — the {"error": {code,
 * detail?, message}} shape, the exact machine codes of
 * serve/errors.hh, and the Retry-After headers on the retryable
 * 503s. These goldens are the compatibility contract clients
 * dispatch on; changing any of them is an API break.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "config/json.hh"
#include "serve/errors.hh"
#include "serve/http_server.hh"
#include "serve/service.hh"
#include "serve_test_util.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace madmax
{

using namespace serve_test;

namespace
{

HttpRequest
post(const std::string &path, const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = path;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

/** The exact two-field error body (dump(2) framing, sorted keys). */
std::string
goldenBody(const std::string &code, const std::string &message)
{
    return "{\n"
           "  \"error\": {\n"
           "    \"code\": \"" + code + "\",\n"
           "    \"message\": \"" + message + "\"\n"
           "  }\n"
           "}\n";
}

/** An EvalService tuned for error-path tests: serial engine, no
 *  batching window, hair-trigger breaker. */
ServiceOptions
testServiceOptions()
{
    ServiceOptions o;
    o.jobs = 1;
    o.batchWindowMicros = 0;
    o.breakerFailureThreshold = 1;
    o.breakerOpenMillis = 1000;
    return o;
}

} // namespace

TEST(ErrorTaxonomy, SpecTablePinsEveryStatusAndCode)
{
    const struct
    {
        ServeError kind;
        int status;
        const char *code;
    } expected[] = {
        {ServeError::BadRequest, 400, "bad_request"},
        {ServeError::NotFound, 404, "not_found"},
        {ServeError::MethodNotAllowed, 405, "method_not_allowed"},
        {ServeError::PayloadTooLarge, 413, "payload_too_large"},
        {ServeError::HeaderTooLarge, 431, "bad_request"},
        {ServeError::Internal, 500, "internal"},
        {ServeError::EvalFailed, 500, "eval_failed"},
        {ServeError::NotImplemented, 501, "not_implemented"},
        {ServeError::Overloaded, 503, "overloaded"},
        {ServeError::ResourceExhausted, 503, "resource_exhausted"},
        {ServeError::FdExhausted, 503, "fd_exhausted"},
        {ServeError::CircuitOpen, 503, "circuit_open"},
        {ServeError::DeadlineExceeded, 504, "deadline_exceeded"},
    };
    for (const auto &e : expected) {
        EXPECT_EQ(serveErrorSpec(e.kind).status, e.status) << e.code;
        EXPECT_STREQ(serveErrorSpec(e.kind).code, e.code);
    }
}

TEST(ErrorTaxonomy, MakeErrorMatchesLegacyErrorResponseByteForByte)
{
    // The taxonomy renderer and the pre-taxonomy errorResponse() are
    // the same wire bytes — callers were migrated, clients see no
    // change.
    HttpResponse viaTaxonomy = makeError(ServeError::BadRequest, "x");
    HttpResponse viaLegacy = errorResponse(400, "bad_request", "x");
    EXPECT_EQ(viaTaxonomy.status, viaLegacy.status);
    EXPECT_EQ(viaTaxonomy.body, viaLegacy.body);
    EXPECT_EQ(viaTaxonomy.body, goldenBody("bad_request", "x"));
}

TEST(ErrorTaxonomy, DeadlineBodyCarriesPartialWorkDetail)
{
    HttpResponse resp;
    try {
        throw DeadlineError(12, "queued");
    } catch (...) {
        resp = errorFromCurrentException();
    }
    EXPECT_EQ(resp.status, 504);
    EXPECT_EQ(resp.body,
              "{\n"
              "  \"error\": {\n"
              "    \"code\": \"deadline_exceeded\",\n"
              "    \"detail\": {\n"
              "      \"stage\": \"queued\",\n"
              "      \"waited_ms\": 12\n"
              "    },\n"
              "    \"message\": \"request deadline exceeded after "
              "12 ms (queued)\"\n"
              "  }\n"
              "}\n");
}

TEST(ErrorTaxonomy, CircuitOpenBodyCarriesRetryAfter)
{
    HttpResponse resp;
    try {
        throw CircuitOpenError(3);
    } catch (...) {
        resp = errorFromCurrentException();
    }
    EXPECT_EQ(resp.status, 503);
    EXPECT_EQ(resp.headers.at("Retry-After"), "3");
    EXPECT_EQ(resp.body,
              goldenBody("circuit_open",
                         "circuit breaker is open for this "
                         "configuration; retry in 3 s"));
}

TEST(ErrorTaxonomy, ParseErrorBodyIs400BadRequest)
{
    // The message is the JSON parser's, captured from the source of
    // truth rather than duplicated here; the golden pins the mapping
    // and the rendering around it.
    std::string parseMessage;
    try {
        JsonValue::parse("this is not json");
        FAIL() << "parse must reject";
    } catch (const ConfigError &e) {
        parseMessage = e.what();
    }
    EvalService service(testServiceOptions());
    HttpResponse resp =
        service.handle(post("/v1/evaluate", "this is not json"));
    EXPECT_EQ(resp.status, 400);
    EXPECT_EQ(resp.body, goldenBody("bad_request", parseMessage));
}

TEST(ErrorTaxonomy, RouterBodies404And405)
{
    EvalService service(testServiceOptions());
    HttpResponse notFound = service.handle(post("/v1/nope", "{}"));
    EXPECT_EQ(notFound.status, 404);
    EXPECT_EQ(notFound.body,
              goldenBody("not_found", "no such endpoint: /v1/nope"));

    HttpRequest wrongMethod;
    wrongMethod.method = "GET";
    wrongMethod.target = "/v1/evaluate";
    wrongMethod.version = "HTTP/1.1";
    HttpResponse r = service.handle(wrongMethod);
    EXPECT_EQ(r.status, 405);
    EXPECT_EQ(r.body,
              goldenBody("method_not_allowed",
                         "GET not supported on /v1/evaluate "
                         "(use POST)"));
}

TEST(ErrorTaxonomy, InjectedEvalFailureIs500EvalFailed)
{
    EvalService service(testServiceOptions());
    FaultScope scope("engine.eval=throw");
    HttpResponse resp =
        service.handle(post("/v1/evaluate", shippedTripleBody()));
    EXPECT_EQ(resp.status, 500);
    EXPECT_EQ(resp.body,
              goldenBody("eval_failed",
                         "injected fault at engine.eval"));
    EXPECT_EQ(service.stats().evalFailures, 1);
}

TEST(ErrorTaxonomy, InjectedConfigBadAllocIs503ResourceExhausted)
{
    EvalService service(testServiceOptions());
    FaultScope scope("config.load=badalloc");
    HttpResponse resp =
        service.handle(post("/v1/evaluate", shippedTripleBody()));
    EXPECT_EQ(resp.status, 503);
    EXPECT_EQ(resp.body,
              goldenBody("resource_exhausted",
                         "allocation failed while serving the "
                         "request"));
}

TEST(ErrorTaxonomy, InjectedConfigThrowIs500Internal)
{
    EvalService service(testServiceOptions());
    FaultScope scope("config.load=throw");
    HttpResponse resp =
        service.handle(post("/v1/evaluate", shippedTripleBody()));
    EXPECT_EQ(resp.status, 500);
    EXPECT_EQ(resp.body,
              goldenBody("internal",
                         "injected fault at config.load"));
}

TEST(ErrorTaxonomy, TrippedBreakerIs503CircuitOpen)
{
    EvalService service(testServiceOptions()); // threshold 1
    FaultScope scope("engine.eval=throw");
    HttpResponse first =
        service.handle(post("/v1/evaluate", shippedTripleBody()));
    ASSERT_EQ(first.status, 500); // the failure that trips the key

    HttpResponse second =
        service.handle(post("/v1/evaluate", shippedTripleBody()));
    EXPECT_EQ(second.status, 503);
    EXPECT_EQ(second.headers.at("Retry-After"), "1");
    EXPECT_EQ(second.body,
              goldenBody("circuit_open",
                         "circuit breaker is open for this "
                         "configuration; retry in 1 s"));
    EXPECT_EQ(service.breaker().stats().trips, 1);
    EXPECT_EQ(service.breaker().stats().rejects, 1);
}

TEST(ErrorTaxonomy, TransportBodies400And413And431And501)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [](const HttpRequest &) { return HttpResponse{}; }, opts);
    server.start();
    const int port = server.port();

    std::string resp = httpExchange(port, "complete garbage\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 400);
    EXPECT_EQ(bodyOf(resp),
              goldenBody("bad_request", "malformed request line"));

    resp = httpExchange(port,
                        "POST /x HTTP/1.1\r\nHost: h\r\n"
                        "Content-Length: 99999999\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 413);
    EXPECT_EQ(bodyOf(resp),
              goldenBody("payload_too_large",
                         "request body exceeds 1048576 bytes"));

    resp = httpExchange(
        port, "GET /x HTTP/1.1\r\nBig: " +
                  std::string(17 << 10, 'x') + "\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 431);
    EXPECT_EQ(bodyOf(resp),
              goldenBody("bad_request",
                         "malformed or oversized request header"));

    resp = httpExchange(port,
                        "POST /x HTTP/1.1\r\nHost: h\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n");
    EXPECT_EQ(statusOf(resp), 501);
    EXPECT_EQ(bodyOf(resp),
              goldenBody("not_implemented",
                         "Transfer-Encoding is not supported; send "
                         "a Content-Length body"));
    server.stop();
}

TEST(ErrorTaxonomy, ShedExpensiveIs503OverloadedWithRetryAfter)
{
    // queueDepth 1 sheds tier-2 requests at load >= 0 — i.e. always —
    // making the overload path deterministic without real load.
    HttpServerOptions opts;
    opts.port = 0;
    opts.queueDepth = 1;
    opts.classifier = [](const HttpRequest &) {
        return RequestCost::Expensive;
    };
    HttpServer server(
        [](const HttpRequest &) { return HttpResponse{}; }, opts);
    server.start();
    std::string resp =
        httpExchange(server.port(), postRequest("/v1/evaluate", "{}"));
    EXPECT_EQ(statusOf(resp), 503);
    EXPECT_NE(resp.find("Retry-After: 1\r\n"), std::string::npos);
    EXPECT_EQ(bodyOf(resp),
              goldenBody("overloaded",
                         "shedding cold evaluations under load, "
                         "retry"));
    server.stop();
}

TEST(ErrorTaxonomy, AcceptEmfileIs503FdExhaustedViaEmergencyFd)
{
    HttpServerOptions opts;
    opts.port = 0;
    HttpServer server(
        [](const HttpRequest &) { return HttpResponse{}; }, opts);
    server.start();

    // The first accept(2) fails with an injected EMFILE; the server
    // burns its emergency fd to accept-then-reject this client with
    // a prompt, well-formed 503 instead of leaving it in the backlog.
    FaultScope scope("http.accept=errno:EMFILE@nth:1");
    std::string resp =
        httpExchange(server.port(), getRequest("/v1/health"));
    EXPECT_EQ(statusOf(resp), 503);
    EXPECT_NE(resp.find("Retry-After: 1\r\n"), std::string::npos);
    EXPECT_EQ(bodyOf(resp),
              goldenBody("fd_exhausted",
                         "server is out of file descriptors, retry"));
    EXPECT_EQ(server.stats().fdExhausted, 1);
    EXPECT_EQ(server.stats().fdRejects, 1);

    // The reserve was re-opened: the next connection serves normally.
    std::string ok =
        httpExchange(server.port(), getRequest("/v1/health"));
    EXPECT_EQ(statusOf(ok), 200);
    server.stop();
}

TEST(ErrorTaxonomy, DeadlineExceededEndToEndIs504)
{
    // The deadline gates WAITING, not evaluating: a lone request
    // becomes the batch leader and always runs to completion, so the
    // 504 path needs a request stuck behind a wedged leader. Thread A
    // wedges on an injected 800 ms evaluation; the main thread's
    // request then queues behind it and times out at its 50 ms
    // deadline. The waited time is wall clock, so the body is
    // asserted structurally here; DeadlineBodyCarriesPartialWorkDetail
    // pins the exact bytes.
    ServiceOptions sopts = testServiceOptions();
    sopts.requestTimeoutMillis = 50;
    sopts.breakerFailureThreshold = 1 << 20; // Keep the breaker out.
    EvalService service(sopts);
    FaultScope scope("engine.eval=delay:800000@nth:1");

    HttpResponse leaderResp;
    std::thread leader([&] {
        leaderResp =
            service.handle(post("/v1/evaluate", shippedTripleBody()));
    });
    // Let A reach the engine before queueing behind it.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    HttpResponse resp =
        service.handle(post("/v1/evaluate", shippedTripleBody()));
    EXPECT_EQ(resp.status, 504);
    JsonValue doc = JsonValue::parse(resp.body);
    EXPECT_EQ(doc.at("error").at("code").asString(),
              "deadline_exceeded");
    EXPECT_GE(doc.at("error").at("detail").at("waited_ms").asLong(), 50);
    EXPECT_EQ(doc.at("error").at("detail").at("stage").asString(),
              "queued");
    EXPECT_EQ(service.dispatcher().stats().deadlineTimeouts, 1);

    leader.join();
    // The wedged leader itself still completed normally.
    EXPECT_EQ(leaderResp.status, 200);
}

} // namespace madmax
