/**
 * @file
 * Micro-batching + parsed-config-cache tests: concurrent evaluates
 * of one triple coalesce into a single engine batch with
 * byte-identical responses, repeat bodies skip parsing via the
 * config cache, whitespace-variant bodies share one ParsedTriple,
 * /v1/metrics speaks Prometheus, admission classification tiers
 * requests, SingleFlight deduplicates identical in-flight work, the
 * watchdog rescues requests queued behind a wedged batch leader, and
 * per-request deadlines abandon cleanly from either wait stage.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/batch_dispatcher.hh"
#include "serve/service.hh"
#include "serve_test_util.hh"
#include "util/fault_injection.hh"
#include "util/lru_cache.hh"

namespace madmax
{

using namespace serve_test;

namespace
{

HttpRequest
evaluateRequest(const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/evaluate";
    req.body = body;
    return req;
}

ServiceOptions
testOptions()
{
    ServiceOptions opts;
    opts.jobs = 2;
    return opts;
}

} // namespace

TEST(Batching, ConcurrentSameTripleRequestsCoalesceByteIdentically)
{
    ServiceOptions opts = testOptions();
    // A generous window + a cut at exactly the thread count makes a
    // single coalesced batch the overwhelmingly likely outcome (and
    // stragglers degrade to memo hits, never to extra evaluations).
    opts.batchWindowMicros = 250000;
    opts.batchMax = 8;
    EvalService service(opts);
    const std::string body = shippedTripleBody();

    constexpr int kThreads = 8;
    std::vector<std::string> responses(kThreads);
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            ++ready;
            while (ready.load() < kThreads)
                std::this_thread::yield();
            responses[i] = service.handle(evaluateRequest(body)).body;
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(responses[i], responses[0]) << "thread " << i;
    EXPECT_NE(responses[0].find("\"iteration_seconds\""),
              std::string::npos);

    // One fresh evaluation total: in-batch duplicates collapse, and
    // any straggler that missed the window hit the memo cache.
    EngineCounters c = service.engine().counters();
    EXPECT_EQ(c.lifetime.evaluations, 1);
    EXPECT_EQ(c.lifetime.cacheHits + c.lifetime.evaluations +
                  service.dispatcher().stats().memoFastPath,
              kThreads);

    BatchDispatcherStats b = service.dispatcher().stats();
    EXPECT_GE(b.windows, 1);
    EXPECT_GE(b.coalesced, 2) << "no coalescing happened at all";
    EXPECT_LE(b.maxOccupancy, 8);
    EXPECT_EQ(b.requests + b.memoFastPath, kThreads);
}

TEST(Batching, RepeatBodiesSkipParsingViaTheConfigCache)
{
    EvalService service(testOptions());
    const std::string body = shippedTripleBody();

    std::string first = service.handle(evaluateRequest(body)).body;
    std::string second = service.handle(evaluateRequest(body)).body;
    EXPECT_EQ(first, second);

    ConfigCache::Stats cc = service.configCache().stats();
    EXPECT_EQ(cc.misses, 1);
    EXPECT_EQ(cc.hits, 1);
    EXPECT_EQ(cc.entries, 1u);

    // The repeat also bypassed the batch window entirely.
    EXPECT_EQ(service.dispatcher().stats().memoFastPath, 1);
}

TEST(Batching, WhitespaceVariantBodiesShareOneParsedTriple)
{
    EvalService service(testOptions());
    const std::string compact =
        JsonValue::parse(shippedTripleBody()).dump(0);
    const std::string pretty =
        JsonValue::parse(shippedTripleBody()).dump(4);
    ASSERT_NE(compact, pretty);

    std::string a = service.handle(evaluateRequest(compact)).body;
    std::string b = service.handle(evaluateRequest(pretty)).body;
    EXPECT_EQ(a, b);

    ConfigCache::Stats cc = service.configCache().stats();
    EXPECT_EQ(cc.misses, 2);       // Two distinct bodies parsed...
    EXPECT_EQ(cc.tripleShares, 1); // ...one shared parsed triple.
    EXPECT_EQ(cc.tripleEntries, 1u);
    EXPECT_EQ(cc.entries, 2u);

    // Same canonical triple + plan -> same engine key -> the second
    // body was an engine memo hit despite its novel bytes.
    EXPECT_EQ(service.engine().counters().lifetime.evaluations, 1);
}

TEST(Batching, MetricsEndpointSpeaksPrometheus)
{
    EvalService service(testOptions());
    service.handle(evaluateRequest(shippedTripleBody()));

    HttpRequest req;
    req.method = "GET";
    req.target = "/v1/metrics";
    HttpResponse resp = service.handle(req);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.contentType.rfind("text/plain", 0), 0u);

    for (const char *needle :
         {"# TYPE madmax_requests_total counter",
          "madmax_requests_total{endpoint=\"evaluate\"} 1",
          "# TYPE madmax_engine_evaluations_total counter",
          "madmax_engine_evaluations_total 1",
          "# TYPE madmax_batch_windows_total counter",
          "# TYPE madmax_config_cache_misses_total counter",
          "madmax_config_cache_misses_total 1",
          "# TYPE madmax_uptime_seconds gauge",
          "madmax_request_seconds_total{endpoint=\"evaluate\"}"})
        EXPECT_NE(resp.body.find(needle), std::string::npos)
            << "missing: " << needle;
}

TEST(Batching, StatsReportsBatchingAndConfigCacheSections)
{
    EvalService service(testOptions());
    service.handle(evaluateRequest(shippedTripleBody()));
    service.handle(evaluateRequest(shippedTripleBody()));

    HttpRequest req;
    req.method = "GET";
    req.target = "/v1/stats";
    JsonValue doc = JsonValue::parse(service.handle(req).body);
    const JsonValue &server = doc.at("server");
    EXPECT_EQ(server.at("batching").at("windows").asDouble(), 1);
    EXPECT_EQ(server.at("batching").at("memo_fast_path").asDouble(),
              1);
    EXPECT_EQ(server.at("config_cache").at("hits").asDouble(), 1);
    EXPECT_EQ(server.at("config_cache").at("misses").asDouble(), 1);
    const JsonValue &eng = doc.at("engine");
    EXPECT_EQ(eng.at("batches").at("calls").asDouble(), 1);
    EXPECT_EQ(eng.at("batches").at("requests").asDouble(), 1);
}

TEST(Batching, ClassifierTiersRequestsByExpectedCost)
{
    EvalService service(testOptions());
    const std::string body = shippedTripleBody();

    HttpRequest get;
    get.method = "GET";
    get.target = "/v1/health";
    EXPECT_EQ(service.classify(get), RequestCost::Cheap);

    // Cold evaluate: nothing cached, must be classified Expensive.
    HttpRequest post = evaluateRequest(body);
    EXPECT_EQ(service.classify(post), RequestCost::Expensive);

    // After serving once, the same body is a warm memo hit: Cached.
    service.handle(post);
    EXPECT_EQ(service.classify(post), RequestCost::Cached);

    HttpRequest pareto;
    pareto.method = "POST";
    pareto.target = "/v1/pareto";
    pareto.body = body;
    EXPECT_EQ(service.classify(pareto), RequestCost::Expensive);
}

TEST(Batching, SingleFlightDeduplicatesIdenticalInFlightWork)
{
    SingleFlight flight;
    std::atomic<int> runs{0};
    std::atomic<bool> leaderInFn{false};
    std::mutex gate;
    gate.lock();

    HttpResponse leaderResp;
    std::thread leader([&] {
        leaderResp = flight.run("body-bytes", [&] {
            ++runs;
            leaderInFn = true;
            std::lock_guard<std::mutex> hold(gate);
            HttpResponse r;
            r.body = "computed-once";
            return r;
        });
    });
    while (!leaderInFn.load())
        std::this_thread::yield();

    // The leader is parked inside fn, so this follower must attach
    // to the in-flight entry rather than run fn itself.
    HttpResponse followerResp;
    bool shared = false;
    std::thread follower([&] {
        followerResp = flight.run(
            "body-bytes",
            [&] {
                ++runs;
                return HttpResponse{};
            },
            &shared);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.unlock();
    leader.join();
    follower.join();

    EXPECT_EQ(runs.load(), 1);
    EXPECT_TRUE(shared);
    EXPECT_EQ(leaderResp.body, "computed-once");
    EXPECT_EQ(followerResp.body, "computed-once");

    // A different body is never deduplicated.
    bool sharedOther = false;
    HttpResponse other = flight.run(
        "other-bytes",
        [&] {
            HttpResponse r;
            r.body = "fresh";
            return r;
        },
        &sharedOther);
    EXPECT_FALSE(sharedOther);
    EXPECT_EQ(other.body, "fresh");
}

TEST(Batching, WatchdogRescuesRequestsBehindAWedgedLeader)
{
    // Thread A's evaluation wedges on an injected 600 ms delay while
    // it is the batch leader. A request arriving behind it must not
    // wait the full 600 ms: past the watchdog period it takes over as
    // a rescue leader and submits the queued work as its own batch.
    ServiceOptions opts = testOptions();
    opts.jobs = 1;
    opts.batchWindowMicros = 0;
    opts.batchWatchdogMillis = 40;
    EvalService service(opts);
    FaultScope scope("engine.eval=delay:600000@nth:1");

    HttpResponse wedgedResp;
    std::thread wedged([&] {
        wedgedResp =
            service.handle(evaluateRequest(shippedTripleBody()));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // Well past the 40 ms watchdog: this request rescues itself.
    HttpResponse rescued =
        service.handle(evaluateRequest(shippedTripleBody()));
    EXPECT_EQ(rescued.status, 200);
    EXPECT_EQ(service.dispatcher().stats().watchdogTakeovers, 1);

    wedged.join();
    // The wedged leader's own batch still completed normally.
    EXPECT_EQ(wedgedResp.status, 200);
}

TEST(Batching, DeadlineAbandonsARequestMidBatchEvaluation)
{
    // A leader's open window pulls the deadlined request into its
    // batch; the injected delay then holds the batch past the
    // deadline. The request abandons with stage "evaluating" — its
    // shared slot outlives it for the leader to write into — and the
    // leader itself, which never waits, completes normally.
    ServiceOptions opts = testOptions();
    opts.jobs = 1;
    opts.batchWindowMicros = 200000;
    opts.requestTimeoutMillis = 300;
    EvalService service(opts);
    FaultScope scope("engine.eval=delay:900000@nth:1");

    HttpResponse leaderResp;
    std::thread leader([&] {
        leaderResp =
            service.handle(evaluateRequest(shippedTripleBody()));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    HttpResponse resp =
        service.handle(evaluateRequest(shippedTripleBody()));
    EXPECT_EQ(resp.status, 504);
    JsonValue doc = JsonValue::parse(resp.body);
    EXPECT_EQ(doc.at("error").at("code").asString(),
              "deadline_exceeded");
    EXPECT_EQ(doc.at("error").at("detail").at("stage").asString(),
              "evaluating");

    leader.join();
    EXPECT_EQ(leaderResp.status, 200);

    BatchDispatcherStats b = service.dispatcher().stats();
    EXPECT_EQ(b.deadlineTimeouts, 1);
    EXPECT_EQ(b.windows, 1);     // One coalesced batch served both.
    EXPECT_EQ(b.coalesced, 2);
}

TEST(Batching, LruCacheEvictsLeastRecentlyUsed)
{
    LruCache<int, std::string> cache(2);
    EXPECT_EQ(cache.put(1, "one"), 0u);
    EXPECT_EQ(cache.put(2, "two"), 0u);
    ASSERT_NE(cache.get(1), nullptr); // Touch 1; 2 is now oldest.
    EXPECT_EQ(cache.put(3, "three"), 1u);
    EXPECT_EQ(cache.get(2), nullptr);
    ASSERT_NE(cache.peek(1), nullptr);
    EXPECT_EQ(*cache.peek(1), "one");
    ASSERT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.size(), 2u);
}

} // namespace madmax
