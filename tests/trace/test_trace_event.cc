#include <gtest/gtest.h>

#include "trace/trace_event.hh"

namespace madmax
{

TEST(TraceEvent, Names)
{
    EXPECT_EQ(toString(StreamKind::Compute), "compute");
    EXPECT_EQ(toString(StreamKind::Communication), "communication");
    EXPECT_EQ(toString(EventCategory::EmbeddingLookup), "EmbLookup");
    EXPECT_EQ(toString(EventCategory::Gemm), "GEMM");
    EXPECT_EQ(toString(EventCategory::All2All), "All2All");
    EXPECT_EQ(toString(EventCategory::Memcpy), "Memcpy");
}

TEST(Timeline, DerivedMetrics)
{
    Timeline tl;
    tl.makespan = 10.0;
    tl.computeBusy = 6.0;
    tl.commBusy = 8.0;
    tl.exposedComm = 2.0;
    EXPECT_DOUBLE_EQ(tl.overlappedComm(), 6.0);
    EXPECT_DOUBLE_EQ(tl.overlapFraction(), 0.75);
    EXPECT_DOUBLE_EQ(tl.serialized(), 14.0);
}

TEST(Timeline, ZeroCommHasZeroOverlapFraction)
{
    Timeline tl;
    tl.computeBusy = 5.0;
    EXPECT_DOUBLE_EQ(tl.overlapFraction(), 0.0);
    EXPECT_DOUBLE_EQ(tl.serialized(), 5.0);
}

} // namespace madmax
