#include <gtest/gtest.h>

#include "config/json.hh"
#include "trace/chrome_trace.hh"

namespace madmax
{

namespace
{

Timeline
tinyTimeline()
{
    Timeline tl;
    TraceEvent compute;
    compute.id = 0;
    compute.name = "EMB";
    compute.stream = StreamKind::Compute;
    compute.category = EventCategory::EmbeddingLookup;
    compute.duration = 2e-3;
    tl.events.push_back(ScheduledEvent{compute, 0.0, 2e-3});

    TraceEvent comm;
    comm.id = 1;
    comm.name = "EMB_A2A \"x\"";
    comm.stream = StreamKind::Communication;
    comm.category = EventCategory::All2All;
    comm.duration = 3e-3;
    comm.blocking = true;
    comm.deps = {0};
    tl.events.push_back(ScheduledEvent{comm, 2e-3, 5e-3});

    tl.makespan = 5e-3;
    tl.computeBusy = 2e-3;
    tl.commBusy = 3e-3;
    tl.exposedComm = 3e-3;
    return tl;
}

} // namespace

TEST(ChromeTrace, ProducesValidJson)
{
    std::string json = chromeTraceJson(tinyTimeline());
    // Must parse with our own JSON reader.
    JsonValue doc = JsonValue::parse(json);
    ASSERT_TRUE(doc.has("traceEvents"));
    const auto &events = doc.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 2u);

    const JsonValue &first = events[0];
    EXPECT_EQ(first.at("name").asString(), "EMB");
    EXPECT_EQ(first.at("ph").asString(), "X");
    EXPECT_EQ(first.at("tid").asLong(), 0);      // Compute lane.
    EXPECT_DOUBLE_EQ(first.at("ts").asDouble(), 0.0);
    EXPECT_NEAR(first.at("dur").asDouble(), 2000.0, 1e-6); // us.

    const JsonValue &second = events[1];
    EXPECT_EQ(second.at("tid").asLong(), 1);     // Comm lane.
    EXPECT_EQ(second.at("name").asString(), "EMB_A2A \"x\"");
    EXPECT_EQ(second.at("args").at("blocking").asBool(), true);
}

TEST(ChromeTrace, SkipsZeroDurationEvents)
{
    Timeline tl = tinyTimeline();
    TraceEvent barrier;
    barrier.id = 2;
    barrier.name = "iter_end";
    barrier.duration = 0.0;
    tl.events.push_back(ScheduledEvent{barrier, 5e-3, 5e-3});

    JsonValue doc = JsonValue::parse(chromeTraceJson(tl));
    EXPECT_EQ(doc.at("traceEvents").size(), 2u);
}

TEST(AsciiStreams, RendersTwoLanes)
{
    std::string s = asciiStreams(tinyTimeline(), 40);
    EXPECT_NE(s.find("compute |"), std::string::npos);
    EXPECT_NE(s.find("comm    |"), std::string::npos);
    // Blocking comm renders as '=' fill somewhere in the comm lane.
    EXPECT_NE(s.find('='), std::string::npos);
}

TEST(AsciiStreams, EmptyTimelineRendersNothing)
{
    Timeline tl;
    EXPECT_TRUE(asciiStreams(tl).empty());
}

} // namespace madmax
